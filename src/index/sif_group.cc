#include "index/sif_group.h"

#include <algorithm>

namespace dsks {

SifGroupIndex::SifGroupIndex(BufferPool* pool, const ObjectSet& objects,
                             size_t vocab_size, size_t num_frequent_terms,
                             size_t min_postings)
    : SifIndex(pool, objects, vocab_size, min_postings) {
  // Rank keywords by posting count; the top x become the frequent set.
  std::vector<TermId> by_freq(vocab_size);
  for (TermId t = 0; t < vocab_size; ++t) by_freq[t] = t;
  std::sort(by_freq.begin(), by_freq.end(), [this](TermId a, TermId b) {
    return PostingCount(a) != PostingCount(b)
               ? PostingCount(a) > PostingCount(b)
               : a < b;
  });
  const size_t x = std::min(num_frequent_terms, by_freq.size());
  frequent_terms_.assign(by_freq.begin(), by_freq.begin() + x);
  std::sort(frequent_terms_.begin(), frequent_terms_.end());

  // For every edge, mark each frequent pair co-occurring inside a single
  // object.
  const RoadNetwork& net = objects.network();
  for (EdgeId e = 0; e < net.num_edges(); ++e) {
    for (ObjectId id : objects.ObjectsOnEdge(e)) {
      const auto& terms = objects.object(id).terms;
      std::vector<TermId> freq_terms;
      for (TermId t : terms) {
        if (std::binary_search(frequent_terms_.begin(), frequent_terms_.end(),
                               t)) {
          freq_terms.push_back(t);
        }
      }
      for (size_t i = 0; i < freq_terms.size(); ++i) {
        for (size_t j = i + 1; j < freq_terms.size(); ++j) {
          auto& edges = pair_edges_[PairKey(freq_terms[i], freq_terms[j])];
          if (edges.empty() || edges.back() != e) {
            edges.push_back(e);  // edge ids arrive in increasing order
          }
        }
      }
    }
  }
  for (const auto& [key, edges] : pair_edges_) {
    (void)key;
    pair_bytes_ += edges.size() * sizeof(EdgeId) + sizeof(uint64_t);
  }
}

uint64_t SifGroupIndex::EstimatePairListBytes(const ObjectSet& objects,
                                              size_t vocab_size,
                                              size_t num_frequent_terms) {
  std::vector<uint64_t> freq(vocab_size, 0);
  for (const auto& obj : objects.objects()) {
    for (TermId t : obj.terms) {
      ++freq[t];
    }
  }
  std::vector<TermId> by_freq(vocab_size);
  for (TermId t = 0; t < vocab_size; ++t) by_freq[t] = t;
  std::sort(by_freq.begin(), by_freq.end(), [&freq](TermId a, TermId b) {
    return freq[a] != freq[b] ? freq[a] > freq[b] : a < b;
  });
  const size_t x = std::min(num_frequent_terms, by_freq.size());
  std::vector<TermId> frequent(by_freq.begin(), by_freq.begin() + x);
  std::sort(frequent.begin(), frequent.end());

  // pair key -> (last edge added, list length).
  std::unordered_map<uint64_t, std::pair<EdgeId, uint64_t>> lists;
  const RoadNetwork& net = objects.network();
  for (EdgeId e = 0; e < net.num_edges(); ++e) {
    for (ObjectId id : objects.ObjectsOnEdge(e)) {
      const auto& terms = objects.object(id).terms;
      std::vector<TermId> freq_terms;
      for (TermId t : terms) {
        if (std::binary_search(frequent.begin(), frequent.end(), t)) {
          freq_terms.push_back(t);
        }
      }
      for (size_t i = 0; i < freq_terms.size(); ++i) {
        for (size_t j = i + 1; j < freq_terms.size(); ++j) {
          auto& entry = lists[PairKey(freq_terms[i], freq_terms[j])];
          if (entry.second == 0 || entry.first != e) {
            entry.first = e;
            ++entry.second;
          }
        }
      }
    }
  }
  uint64_t bytes = 0;
  for (const auto& [key, entry] : lists) {
    (void)key;
    bytes += entry.second * sizeof(EdgeId) + sizeof(uint64_t);
  }
  return bytes;
}

void SifGroupIndex::OnObjectAdded(ObjectId id, EdgeId edge,
                                  std::span<const TermId> terms) {
  // Keep the pair lists exact: mark every frequent pair the new object
  // carries as present on its edge.
  std::vector<TermId> freq_terms;
  for (TermId t : terms) {
    if (std::binary_search(frequent_terms_.begin(), frequent_terms_.end(),
                           t)) {
      freq_terms.push_back(t);
    }
  }
  for (size_t i = 0; i < freq_terms.size(); ++i) {
    for (size_t j = i + 1; j < freq_terms.size(); ++j) {
      auto& edges = pair_edges_[PairKey(freq_terms[i], freq_terms[j])];
      auto it = std::lower_bound(edges.begin(), edges.end(), edge);
      if (it == edges.end() || *it != edge) {
        edges.insert(it, edge);
        pair_bytes_ += sizeof(EdgeId);
      }
    }
  }
  SifIndex::OnObjectAdded(id, edge, terms);
}

bool SifGroupIndex::CheckSignature(EdgeId edge, std::span<const TermId> terms,
                                   std::vector<PosRange>* ranges) {
  if (!SifIndex::CheckSignature(edge, terms, ranges)) {
    return false;
  }
  // Any indexed query-term pair whose list misses this edge disproves the
  // conjunction.
  for (size_t i = 0; i < terms.size(); ++i) {
    for (size_t j = i + 1; j < terms.size(); ++j) {
      auto it = pair_edges_.find(PairKey(terms[i], terms[j]));
      if (it == pair_edges_.end()) {
        // Pair not indexed: no information unless both terms are frequent,
        // in which case the absence of the list means no edge carries both.
        const bool a_freq = std::binary_search(
            frequent_terms_.begin(), frequent_terms_.end(), terms[i]);
        const bool b_freq = std::binary_search(
            frequent_terms_.begin(), frequent_terms_.end(), terms[j]);
        if (a_freq && b_freq) {
          return false;
        }
        continue;
      }
      if (!std::binary_search(it->second.begin(), it->second.end(), edge)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace dsks
