#include "index/inverted_rtree.h"

#include <algorithm>

#include "common/macros.h"

namespace dsks {

InvertedRTreeIndex::InvertedRTreeIndex(BufferPool* pool,
                                       const ObjectSet& objects,
                                       size_t vocab_size)
    : pool_(pool), objects_meta_(&objects) {
  // Group object points by keyword, then bulk load one R-tree per keyword.
  std::vector<std::vector<RTree::Entry>> per_term(vocab_size);
  for (const auto& obj : objects.objects()) {
    for (TermId t : obj.terms) {
      per_term[t].push_back(RTree::Entry{Mbr::FromPoint(obj.loc), obj.id});
    }
  }
  term_trees_.resize(vocab_size);
  for (TermId t = 0; t < vocab_size; ++t) {
    if (per_term[t].empty()) {
      continue;
    }
    term_trees_[t] =
        std::make_unique<RTree>(RTree::BulkLoad(pool_, std::move(per_term[t])));
    rtree_pages_ += term_trees_[t]->CountPages();
  }
  object_file_ = std::make_unique<ObjectFile>(pool_, objects);
}

Status InvertedRTreeIndex::LoadObjects(EdgeId edge,
                                       std::span<const TermId> terms,
                                       std::vector<LoadedObject>* out) {
  out->clear();
  DSKS_CHECK_MSG(!terms.empty(), "query must have at least one keyword");
  ++stats_.edges_probed;

  const Mbr edge_mbr = objects_meta_->network().EdgeMbr(edge);
  uint64_t loaded_here = 0;

  // Range-search each keyword's tree with the edge MBR and intersect the
  // candidate object ids.
  std::vector<ObjectId> candidates;
  bool first = true;
  for (TermId t : terms) {
    if (term_trees_[t] == nullptr) {
      candidates.clear();
      break;
    }
    std::vector<ObjectId> found;
    DSKS_RETURN_IF_ERROR(term_trees_[t]->RangeSearch(
        edge_mbr, [&found](const Mbr&, uint64_t id) {
          found.push_back(static_cast<ObjectId>(id));
          return true;
        }));
    std::sort(found.begin(), found.end());
    if (first) {
      candidates = std::move(found);
      first = false;
    } else {
      std::vector<ObjectId> merged;
      std::set_intersection(candidates.begin(), candidates.end(),
                            found.begin(), found.end(),
                            std::back_inserter(merged));
      candidates = std::move(merged);
    }
    if (candidates.empty()) {
      break;
    }
  }

  // Verify each surviving candidate against the object file: it must lie
  // on the probed edge (MBR hits from other edges are IR's false hits).
  struct Hit {
    ObjectId id;
    uint16_t pos;
    double w1;
  };
  std::vector<Hit> hits;
  for (ObjectId id : candidates) {
    ObjectFile::Record rec;
    DSKS_RETURN_IF_ERROR(object_file_->Get(id, &rec));
    ++loaded_here;
    if (rec.edge == edge) {
      hits.push_back(Hit{id, rec.pos, rec.w1});
    }
  }
  std::sort(hits.begin(), hits.end(),
            [](const Hit& a, const Hit& b) { return a.pos < b.pos; });

  stats_.objects_loaded += loaded_here;
  if (hits.empty()) {
    if (loaded_here > 0) {
      ++stats_.false_hits;
      stats_.false_hit_objects += loaded_here;
    }
    return Status::Ok();
  }
  out->reserve(hits.size());
  for (const Hit& h : hits) {
    out->push_back(LoadedObject{h.id, h.w1});
  }
  stats_.objects_returned += out->size();
  return Status::Ok();
}

Status InvertedRTreeIndex::EuclideanCandidates(const Point& center,
                                               double radius,
                                               std::span<const TermId> terms,
                                               std::vector<ObjectId>* out) {
  out->clear();
  DSKS_CHECK_MSG(!terms.empty(), "query must have at least one keyword");
  const Mbr box = Mbr::FromPoints({center.x - radius, center.y - radius},
                                  {center.x + radius, center.y + radius});
  bool first = true;
  for (TermId t : terms) {
    if (term_trees_[t] == nullptr) {
      out->clear();
      return Status::Ok();
    }
    std::vector<ObjectId> found;
    DSKS_RETURN_IF_ERROR(term_trees_[t]->RangeSearch(
        box, [&found, &center, radius](const Mbr& mbr, uint64_t id) {
          if (mbr.MinDistance(center) <= radius) {
            found.push_back(static_cast<ObjectId>(id));
          }
          return true;
        }));
    std::sort(found.begin(), found.end());
    if (first) {
      *out = std::move(found);
      first = false;
    } else {
      std::vector<ObjectId> merged;
      std::set_intersection(out->begin(), out->end(), found.begin(),
                            found.end(), std::back_inserter(merged));
      *out = std::move(merged);
    }
    if (out->empty()) {
      return Status::Ok();
    }
  }
  return Status::Ok();
}

uint64_t InvertedRTreeIndex::SizeBytes() const {
  return (rtree_pages_ + object_file_->num_pages()) * kPageSize;
}

}  // namespace dsks
