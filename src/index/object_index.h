#ifndef DSKS_INDEX_OBJECT_INDEX_H_
#define DSKS_INDEX_OBJECT_INDEX_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/types.h"

namespace dsks {

/// An object that satisfied the keyword constraint on a probed edge,
/// together with its cost offset from the edge's reference node n1
/// (w(n2, o) = edge weight - w1, Equation 1).
struct LoadedObject {
  ObjectId id = kInvalidObjectId;
  double w1 = 0.0;
};

/// Per-query counters an index accumulates across LoadObjects calls. The
/// figures in §5 are built from these plus the buffer-pool/disk I/O stats.
///
/// Counters are relaxed atomics so the same index instance can serve
/// concurrent queries (the counters then aggregate across all in-flight
/// queries; per-query attribution requires running queries one at a time,
/// which is what the sequential experiment harness does).
struct ObjectIndexStats {
  /// LoadObjects invocations (edges probed during network expansion).
  std::atomic<uint64_t> edges_probed{0};
  /// Edges rejected by the in-memory signature test without any I/O.
  std::atomic<uint64_t> edges_skipped_by_signature{0};
  /// Posting entries (or R-tree candidate objects) read from disk pages.
  std::atomic<uint64_t> objects_loaded{0};
  /// Objects returned (satisfied the full AND keyword constraint).
  std::atomic<uint64_t> objects_returned{0};
  /// Probes that performed I/O but returned no object (§3.3 "false hit").
  std::atomic<uint64_t> false_hits{0};
  /// Objects loaded by those false hits (the ξ cost of §3.3).
  std::atomic<uint64_t> false_hit_objects{0};

  void Reset() {
    edges_probed.store(0, std::memory_order_relaxed);
    edges_skipped_by_signature.store(0, std::memory_order_relaxed);
    objects_loaded.store(0, std::memory_order_relaxed);
    objects_returned.store(0, std::memory_order_relaxed);
    false_hits.store(0, std::memory_order_relaxed);
    false_hit_objects.store(0, std::memory_order_relaxed);
  }
};

/// Interface of the spatio-textual object indexes compared in the paper:
/// IR (inverted R-tree), IF (inverted file), SIF (signature-based inverted
/// file), SIF-P (partition-enhanced) and SIF-G (group-based). The SK search
/// algorithm (Algorithm 3) calls LoadObjects for every edge it expands.
class ObjectIndex {
 public:
  virtual ~ObjectIndex() = default;

  /// Algorithm 2: returns the objects lying on `edge` that contain every
  /// term in `terms` (sorted by position along the edge). `terms` must be
  /// non-empty. Disk errors (IOError/Corruption) propagate; `out` must be
  /// considered garbage on a non-OK return.
  virtual Status LoadObjects(EdgeId edge, std::span<const TermId> terms,
                             std::vector<LoadedObject>* out) = 0;

  /// OR-semantics variant used by the ranked search: objects containing
  /// *at least one* term, with `matched` = how many of the query terms
  /// each contains. Default implementation loads per-term and unions.
  struct LoadedObjectUnion {
    ObjectId id = kInvalidObjectId;
    double w1 = 0.0;
    uint32_t matched = 0;
  };
  virtual Status LoadObjectsUnion(EdgeId edge, std::span<const TermId> terms,
                                  std::vector<LoadedObjectUnion>* out);

  /// Total size of the disk-resident part plus in-memory summaries
  /// (signatures, directories), for the Fig. 6(c) index-size comparison.
  virtual uint64_t SizeBytes() const = 0;

  /// Display name, e.g. "SIF-P".
  virtual std::string name() const = 0;

  ObjectIndexStats& stats() { return stats_; }
  const ObjectIndexStats& stats() const { return stats_; }

 protected:
  ObjectIndexStats stats_;
};

}  // namespace dsks

#endif  // DSKS_INDEX_OBJECT_INDEX_H_
