#include "index/sif_partitioned.h"

#include <algorithm>

#include "common/macros.h"
#include "common/timer.h"

namespace dsks {

SifPartitionedIndex::SifPartitionedIndex(BufferPool* pool,
                                         const ObjectSet& objects,
                                         size_t vocab_size,
                                         const SifPConfig& config,
                                         size_t min_postings)
    : SifIndex(pool, objects, vocab_size, min_postings) {
  DSKS_CHECK_MSG(config.log_provider != nullptr,
                 "SIF-P requires a query-log provider");
  const RoadNetwork& net = objects.network();

  // Pick the heavy edges: object count in the top heavy_edge_fraction.
  std::vector<std::pair<size_t, EdgeId>> by_count;
  by_count.reserve(net.num_edges());
  for (EdgeId e = 0; e < net.num_edges(); ++e) {
    const size_t m = objects.ObjectsOnEdge(e).size();
    if (m >= config.min_objects) {
      by_count.emplace_back(m, e);
    }
  }
  std::sort(by_count.begin(), by_count.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  const size_t budget = static_cast<size_t>(
      static_cast<double>(net.num_edges()) * config.heavy_edge_fraction);
  const size_t num_heavy = std::min(by_count.size(), budget);

  Timer timer;
  for (size_t i = 0; i < num_heavy; ++i) {
    const EdgeId e = by_count[i].second;
    const auto on_edge = objects.ObjectsOnEdge(e);
    std::vector<std::vector<TermId>> term_sets;
    term_sets.reserve(on_edge.size());
    for (ObjectId id : on_edge) {
      term_sets.push_back(objects.object(id).terms);  // already sorted
    }
    const std::vector<LogQuery> log = config.log_provider(e, term_sets);
    if (log.empty()) {
      continue;
    }
    EdgePartition partition =
        config.use_dp ? DpPartition(term_sets, log, config.max_cuts)
                      : GreedyPartition(term_sets, log, config.max_cuts);
    if (partition.boundaries.empty()) {
      continue;  // no beneficial cut; plain SIF behaviour suffices
    }
    PartitionedEdge pe;
    pe.num_objects = static_cast<uint16_t>(term_sets.size());
    pe.ve_terms.resize(partition.num_virtual_edges());
    for (size_t v = 0; v < partition.num_virtual_edges(); ++v) {
      size_t start = 0;
      size_t end = 0;
      partition.Range(v, term_sets.size(), &start, &end);
      std::vector<TermId>& terms = pe.ve_terms[v];
      for (size_t o = start; o < end; ++o) {
        terms.insert(terms.end(), term_sets[o].begin(), term_sets[o].end());
      }
      std::sort(terms.begin(), terms.end());
      terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
      partition_bytes_ += terms.size() * sizeof(TermId);
    }
    partition_bytes_ += partition.boundaries.size() * sizeof(uint16_t);
    pe.partition = std::move(partition);
    partitions_.emplace(e, std::move(pe));
  }
  partition_build_millis_ = timer.ElapsedMillis();
}

bool SifPartitionedIndex::CheckSignature(EdgeId edge,
                                         std::span<const TermId> terms,
                                         std::vector<PosRange>* ranges) {
  // Global per-keyword signatures first (cheapest test).
  if (!SifIndex::CheckSignature(edge, terms, ranges)) {
    return false;
  }
  auto it = partitions_.find(edge);
  if (it == partitions_.end()) {
    return true;
  }
  const PartitionedEdge& pe = it->second;
  bool all_pass = true;
  std::vector<PosRange> passing;
  for (size_t v = 0; v < pe.partition.num_virtual_edges(); ++v) {
    const std::vector<TermId>& ve = pe.ve_terms[v];
    bool pass = true;
    for (TermId t : terms) {
      if (!std::binary_search(ve.begin(), ve.end(), t)) {
        pass = false;
        break;
      }
    }
    if (pass) {
      size_t start = 0;
      size_t end = 0;
      pe.partition.Range(v, pe.num_objects, &start, &end);
      passing.push_back(PosRange{static_cast<uint16_t>(start),
                                 static_cast<uint16_t>(end)});
    } else {
      all_pass = false;
    }
  }
  if (passing.empty()) {
    return false;  // every virtual edge fails: skip the edge entirely
  }
  if (!all_pass) {
    *ranges = std::move(passing);  // restrict loading to passing ranges
  }
  return true;
}

uint64_t SifPartitionedIndex::SummarySizeBytes() const {
  return SifIndex::SummarySizeBytes() + partition_bytes_;
}

}  // namespace dsks
