#include "index/sif.h"

namespace dsks {

SifIndex::SifIndex(BufferPool* pool, const ObjectSet& objects,
                   size_t vocab_size, size_t min_postings)
    : InvertedFileIndex(pool, objects, vocab_size),
      kd_order_(std::make_unique<KdEdgeOrder>(objects.network())),
      signature_(std::make_unique<SignatureFile>(objects, *kd_order_,
                                                 vocab_size, min_postings)) {}

bool SifIndex::CheckSignature(EdgeId edge, std::span<const TermId> terms,
                              std::vector<PosRange>* ranges) {
  (void)ranges;
  for (TermId t : terms) {
    if (!signature_->Test(edge, t)) {
      return false;
    }
  }
  return true;
}

}  // namespace dsks
