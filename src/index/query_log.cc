#include "index/query_log.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

namespace dsks {

namespace {

/// Distinct terms on the edge and, for kFrequency, how many objects carry
/// each.
void EdgeTermCounts(std::span<const std::vector<TermId>> edge_objects,
                    std::vector<std::pair<TermId, uint32_t>>* counts) {
  std::map<TermId, uint32_t> acc;
  for (const auto& terms : edge_objects) {
    for (TermId t : terms) {
      ++acc[t];
    }
  }
  counts->assign(acc.begin(), acc.end());
}

/// Samples `l` distinct terms with the given per-term weights.
std::vector<TermId> SampleTerms(
    const std::vector<std::pair<TermId, uint32_t>>& weighted, size_t l,
    bool uniform, Random* rng) {
  std::vector<TermId> out;
  if (weighted.empty()) {
    return out;
  }
  double total = 0.0;
  for (const auto& [t, c] : weighted) {
    total += uniform ? 1.0 : static_cast<double>(c);
  }
  // Rejection-sample distinct terms; the domains here are tiny (terms on
  // one edge), so a bounded number of attempts suffices.
  const size_t want = std::min(l, weighted.size());
  size_t attempts = 0;
  while (out.size() < want && attempts < 64 * want) {
    ++attempts;
    double u = rng->NextDouble() * total;
    TermId picked = weighted.back().first;
    for (const auto& [t, c] : weighted) {
      u -= uniform ? 1.0 : static_cast<double>(c);
      if (u <= 0.0) {
        picked = t;
        break;
      }
    }
    if (std::find(out.begin(), out.end(), picked) == out.end()) {
      out.push_back(picked);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::function<std::vector<LogQuery>(EdgeId,
                                    std::span<const std::vector<TermId>>)>
MakeQueryLogProvider(QueryLogMode mode,
                     std::vector<std::vector<TermId>> workload_terms,
                     size_t terms_per_query, size_t queries_per_edge,
                     uint64_t seed) {
  if (mode == QueryLogMode::kReal) {
    auto workload = std::make_shared<std::vector<std::vector<TermId>>>(
        std::move(workload_terms));
    for (auto& terms : *workload) {
      std::sort(terms.begin(), terms.end());
      terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
    }
    return [workload](EdgeId, std::span<const std::vector<TermId>> objs) {
      // Keep only queries whose keywords all appear on the edge; other
      // queries cost 0 for every partition and would just slow training.
      std::vector<LogQuery> log;
      const double prob = 1.0 / static_cast<double>(workload->size());
      for (const auto& q : *workload) {
        bool all_present = true;
        for (TermId t : q) {
          bool present = false;
          for (const auto& terms : objs) {
            if (std::binary_search(terms.begin(), terms.end(), t)) {
              present = true;
              break;
            }
          }
          if (!present) {
            all_present = false;
            break;
          }
        }
        if (all_present) {
          log.push_back(LogQuery{q, prob});
        }
      }
      return log;
    };
  }

  const bool uniform = mode == QueryLogMode::kRandom;
  return [uniform, terms_per_query, queries_per_edge, seed](
             EdgeId edge, std::span<const std::vector<TermId>> objs) {
    // Per-edge deterministic RNG so partitioning does not depend on the
    // order edges are processed in.
    Random rng(seed ^ (0x9E3779B97F4A7C15ULL * (edge + 1)));
    std::vector<std::pair<TermId, uint32_t>> counts;
    EdgeTermCounts(objs, &counts);
    std::vector<LogQuery> log;
    const double prob = 1.0 / static_cast<double>(queries_per_edge);
    for (size_t i = 0; i < queries_per_edge; ++i) {
      std::vector<TermId> terms =
          SampleTerms(counts, terms_per_query, uniform, &rng);
      if (!terms.empty()) {
        log.push_back(LogQuery{std::move(terms), prob});
      }
    }
    return log;
  };
}

}  // namespace dsks
