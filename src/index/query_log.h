#ifndef DSKS_INDEX_QUERY_LOG_H_
#define DSKS_INDEX_QUERY_LOG_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/random.h"
#include "graph/types.h"
#include "index/partition.h"
#include "index/sif_partitioned.h"

namespace dsks {

/// How the SIF-P training query log is obtained (Fig. 10):
///  * kReal     — the actual query workload is used as the log
///                (SIF-P-Real, the upper bound).
///  * kFrequency— per edge, keywords are sampled proportionally to their
///                frequency among the edge's objects (SIF-P-Freq, the
///                default per §3.3 Remark 1).
///  * kRandom   — per edge, keywords are sampled uniformly from the terms
///                present on the edge (SIF-P-Rand).
enum class QueryLogMode { kReal, kFrequency, kRandom };

/// Builds a SifPConfig::log_provider.
///
/// For kReal, `workload_terms` must hold the keyword sets of the workload
/// queries; the provider filters them to the queries whose keywords all
/// occur on the edge (other queries have zero ξ for any partition).
///
/// For the synthetic modes, `queries_per_edge` keyword sets of size
/// `terms_per_query` are drawn per edge with the stated distribution, each
/// with equal probability. `seed` makes generation deterministic.
std::function<std::vector<LogQuery>(EdgeId,
                                    std::span<const std::vector<TermId>>)>
MakeQueryLogProvider(QueryLogMode mode,
                     std::vector<std::vector<TermId>> workload_terms,
                     size_t terms_per_query, size_t queries_per_edge,
                     uint64_t seed);

}  // namespace dsks

#endif  // DSKS_INDEX_QUERY_LOG_H_
