file(REMOVE_RECURSE
  "CMakeFiles/dsks_cli.dir/dsks_cli.cc.o"
  "CMakeFiles/dsks_cli.dir/dsks_cli.cc.o.d"
  "dsks_cli"
  "dsks_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsks_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
