# Empty dependencies file for dsks_cli.
# This may be replaced when dependencies are built.
