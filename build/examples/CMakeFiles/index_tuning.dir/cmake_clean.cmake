file(REMOVE_RECURSE
  "CMakeFiles/index_tuning.dir/index_tuning.cpp.o"
  "CMakeFiles/index_tuning.dir/index_tuning.cpp.o.d"
  "index_tuning"
  "index_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
