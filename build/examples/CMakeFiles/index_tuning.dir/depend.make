# Empty dependencies file for index_tuning.
# This may be replaced when dependencies are built.
