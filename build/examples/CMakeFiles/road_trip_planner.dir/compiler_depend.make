# Empty compiler generated dependencies file for road_trip_planner.
# This may be replaced when dependencies are built.
