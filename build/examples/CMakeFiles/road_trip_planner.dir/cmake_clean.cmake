file(REMOVE_RECURSE
  "CMakeFiles/road_trip_planner.dir/road_trip_planner.cpp.o"
  "CMakeFiles/road_trip_planner.dir/road_trip_planner.cpp.o.d"
  "road_trip_planner"
  "road_trip_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_trip_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
