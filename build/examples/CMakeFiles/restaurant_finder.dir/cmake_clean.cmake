file(REMOVE_RECURSE
  "CMakeFiles/restaurant_finder.dir/restaurant_finder.cpp.o"
  "CMakeFiles/restaurant_finder.dir/restaurant_finder.cpp.o.d"
  "restaurant_finder"
  "restaurant_finder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restaurant_finder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
