# Empty compiler generated dependencies file for restaurant_finder.
# This may be replaced when dependencies are built.
