# Empty compiler generated dependencies file for bench_ablation_buffer.
# This may be replaced when dependencies are built.
