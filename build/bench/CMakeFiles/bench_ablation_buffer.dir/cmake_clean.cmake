file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_buffer.dir/bench_ablation_buffer.cc.o"
  "CMakeFiles/bench_ablation_buffer.dir/bench_ablation_buffer.cc.o.d"
  "bench_ablation_buffer"
  "bench_ablation_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
