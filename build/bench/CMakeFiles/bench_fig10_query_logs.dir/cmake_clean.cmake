file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_query_logs.dir/bench_fig10_query_logs.cc.o"
  "CMakeFiles/bench_fig10_query_logs.dir/bench_fig10_query_logs.cc.o.d"
  "bench_fig10_query_logs"
  "bench_fig10_query_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_query_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
