# Empty compiler generated dependencies file for bench_fig10_query_logs.
# This may be replaced when dependencies are built.
