file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_space_effectiveness.dir/bench_fig9_space_effectiveness.cc.o"
  "CMakeFiles/bench_fig9_space_effectiveness.dir/bench_fig9_space_effectiveness.cc.o.d"
  "bench_fig9_space_effectiveness"
  "bench_fig9_space_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_space_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
