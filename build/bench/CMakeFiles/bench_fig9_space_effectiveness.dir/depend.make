# Empty dependencies file for bench_fig9_space_effectiveness.
# This may be replaced when dependencies are built.
