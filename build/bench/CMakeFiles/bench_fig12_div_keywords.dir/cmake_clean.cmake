file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_div_keywords.dir/bench_fig12_div_keywords.cc.o"
  "CMakeFiles/bench_fig12_div_keywords.dir/bench_fig12_div_keywords.cc.o.d"
  "bench_fig12_div_keywords"
  "bench_fig12_div_keywords.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_div_keywords.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
