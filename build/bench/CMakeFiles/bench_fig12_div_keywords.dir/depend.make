# Empty dependencies file for bench_fig12_div_keywords.
# This may be replaced when dependencies are built.
