# Empty dependencies file for bench_ablation_landmarks.
# This may be replaced when dependencies are built.
