file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_landmarks.dir/bench_ablation_landmarks.cc.o"
  "CMakeFiles/bench_ablation_landmarks.dir/bench_ablation_landmarks.cc.o.d"
  "bench_ablation_landmarks"
  "bench_ablation_landmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_landmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
