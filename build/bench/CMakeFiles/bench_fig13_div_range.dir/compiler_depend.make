# Empty compiler generated dependencies file for bench_fig13_div_range.
# This may be replaced when dependencies are built.
