file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_div_range.dir/bench_fig13_div_range.cc.o"
  "CMakeFiles/bench_fig13_div_range.dir/bench_fig13_div_range.cc.o.d"
  "bench_fig13_div_range"
  "bench_fig13_div_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_div_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
