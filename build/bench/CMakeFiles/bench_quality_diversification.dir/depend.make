# Empty dependencies file for bench_quality_diversification.
# This may be replaced when dependencies are built.
