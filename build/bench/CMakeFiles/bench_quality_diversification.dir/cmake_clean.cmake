file(REMOVE_RECURSE
  "CMakeFiles/bench_quality_diversification.dir/bench_quality_diversification.cc.o"
  "CMakeFiles/bench_quality_diversification.dir/bench_quality_diversification.cc.o.d"
  "bench_quality_diversification"
  "bench_quality_diversification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quality_diversification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
