file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_search_range.dir/bench_fig8_search_range.cc.o"
  "CMakeFiles/bench_fig8_search_range.dir/bench_fig8_search_range.cc.o.d"
  "bench_fig8_search_range"
  "bench_fig8_search_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_search_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
