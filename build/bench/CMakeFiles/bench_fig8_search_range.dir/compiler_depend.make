# Empty compiler generated dependencies file for bench_fig8_search_range.
# This may be replaced when dependencies are built.
