file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_synthetic.dir/bench_fig16_synthetic.cc.o"
  "CMakeFiles/bench_fig16_synthetic.dir/bench_fig16_synthetic.cc.o.d"
  "bench_fig16_synthetic"
  "bench_fig16_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
