# Empty dependencies file for bench_fig14_div_k.
# This may be replaced when dependencies are built.
