file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_div_k.dir/bench_fig14_div_k.cc.o"
  "CMakeFiles/bench_fig14_div_k.dir/bench_fig14_div_k.cc.o.d"
  "bench_fig14_div_k"
  "bench_fig14_div_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_div_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
