file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_div_datasets.dir/bench_fig11_div_datasets.cc.o"
  "CMakeFiles/bench_fig11_div_datasets.dir/bench_fig11_div_datasets.cc.o.d"
  "bench_fig11_div_datasets"
  "bench_fig11_div_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_div_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
