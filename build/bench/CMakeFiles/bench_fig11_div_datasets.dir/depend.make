# Empty dependencies file for bench_fig11_div_datasets.
# This may be replaced when dependencies are built.
