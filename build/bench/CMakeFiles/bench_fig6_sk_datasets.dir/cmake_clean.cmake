file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_sk_datasets.dir/bench_fig6_sk_datasets.cc.o"
  "CMakeFiles/bench_fig6_sk_datasets.dir/bench_fig6_sk_datasets.cc.o.d"
  "bench_fig6_sk_datasets"
  "bench_fig6_sk_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_sk_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
