# Empty dependencies file for bench_fig6_sk_datasets.
# This may be replaced when dependencies are built.
