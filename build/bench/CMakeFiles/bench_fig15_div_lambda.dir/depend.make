# Empty dependencies file for bench_fig15_div_lambda.
# This may be replaced when dependencies are built.
