file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_div_lambda.dir/bench_fig15_div_lambda.cc.o"
  "CMakeFiles/bench_fig15_div_lambda.dir/bench_fig15_div_lambda.cc.o.d"
  "bench_fig15_div_lambda"
  "bench_fig15_div_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_div_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
