# Empty compiler generated dependencies file for bench_ablation_ccam.
# This may be replaced when dependencies are built.
