file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ccam.dir/bench_ablation_ccam.cc.o"
  "CMakeFiles/bench_ablation_ccam.dir/bench_ablation_ccam.cc.o.d"
  "bench_ablation_ccam"
  "bench_ablation_ccam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ccam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
