# Empty compiler generated dependencies file for bench_baseline_euclidean.
# This may be replaced when dependencies are built.
