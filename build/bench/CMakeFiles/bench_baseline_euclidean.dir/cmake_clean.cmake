file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_euclidean.dir/bench_baseline_euclidean.cc.o"
  "CMakeFiles/bench_baseline_euclidean.dir/bench_baseline_euclidean.cc.o.d"
  "bench_baseline_euclidean"
  "bench_baseline_euclidean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_euclidean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
