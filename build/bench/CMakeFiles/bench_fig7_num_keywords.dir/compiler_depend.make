# Empty compiler generated dependencies file for bench_fig7_num_keywords.
# This may be replaced when dependencies are built.
