file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_num_keywords.dir/bench_fig7_num_keywords.cc.o"
  "CMakeFiles/bench_fig7_num_keywords.dir/bench_fig7_num_keywords.cc.o.d"
  "bench_fig7_num_keywords"
  "bench_fig7_num_keywords.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_num_keywords.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
