# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/spatial_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/rtree_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/index_storage_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/sk_search_test[1]_include.cmake")
include("/root/repo/build/tests/ranked_search_test[1]_include.cmake")
include("/root/repo/build/tests/euclidean_baseline_test[1]_include.cmake")
include("/root/repo/build/tests/objective_test[1]_include.cmake")
include("/root/repo/build/tests/diversify_test[1]_include.cmake")
include("/root/repo/build/tests/core_pairs_test[1]_include.cmake")
include("/root/repo/build/tests/div_search_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/serialization_test[1]_include.cmake")
include("/root/repo/build/tests/landmarks_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
