# Empty compiler generated dependencies file for diversify_test.
# This may be replaced when dependencies are built.
