file(REMOVE_RECURSE
  "CMakeFiles/diversify_test.dir/diversify_test.cc.o"
  "CMakeFiles/diversify_test.dir/diversify_test.cc.o.d"
  "diversify_test"
  "diversify_test.pdb"
  "diversify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diversify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
