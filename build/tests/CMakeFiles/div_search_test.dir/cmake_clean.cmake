file(REMOVE_RECURSE
  "CMakeFiles/div_search_test.dir/div_search_test.cc.o"
  "CMakeFiles/div_search_test.dir/div_search_test.cc.o.d"
  "div_search_test"
  "div_search_test.pdb"
  "div_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/div_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
