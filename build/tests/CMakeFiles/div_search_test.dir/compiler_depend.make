# Empty compiler generated dependencies file for div_search_test.
# This may be replaced when dependencies are built.
