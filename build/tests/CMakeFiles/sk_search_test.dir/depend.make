# Empty dependencies file for sk_search_test.
# This may be replaced when dependencies are built.
