file(REMOVE_RECURSE
  "CMakeFiles/sk_search_test.dir/sk_search_test.cc.o"
  "CMakeFiles/sk_search_test.dir/sk_search_test.cc.o.d"
  "sk_search_test"
  "sk_search_test.pdb"
  "sk_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sk_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
