# Empty dependencies file for core_pairs_test.
# This may be replaced when dependencies are built.
