file(REMOVE_RECURSE
  "CMakeFiles/core_pairs_test.dir/core_pairs_test.cc.o"
  "CMakeFiles/core_pairs_test.dir/core_pairs_test.cc.o.d"
  "core_pairs_test"
  "core_pairs_test.pdb"
  "core_pairs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_pairs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
