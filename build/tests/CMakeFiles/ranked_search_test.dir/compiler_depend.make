# Empty compiler generated dependencies file for ranked_search_test.
# This may be replaced when dependencies are built.
