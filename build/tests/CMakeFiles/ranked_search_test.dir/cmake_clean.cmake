file(REMOVE_RECURSE
  "CMakeFiles/ranked_search_test.dir/ranked_search_test.cc.o"
  "CMakeFiles/ranked_search_test.dir/ranked_search_test.cc.o.d"
  "ranked_search_test"
  "ranked_search_test.pdb"
  "ranked_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranked_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
