file(REMOVE_RECURSE
  "CMakeFiles/index_storage_test.dir/index_storage_test.cc.o"
  "CMakeFiles/index_storage_test.dir/index_storage_test.cc.o.d"
  "index_storage_test"
  "index_storage_test.pdb"
  "index_storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
