# Empty dependencies file for euclidean_baseline_test.
# This may be replaced when dependencies are built.
