file(REMOVE_RECURSE
  "CMakeFiles/euclidean_baseline_test.dir/euclidean_baseline_test.cc.o"
  "CMakeFiles/euclidean_baseline_test.dir/euclidean_baseline_test.cc.o.d"
  "euclidean_baseline_test"
  "euclidean_baseline_test.pdb"
  "euclidean_baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/euclidean_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
