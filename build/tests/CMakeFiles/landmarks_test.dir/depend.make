# Empty dependencies file for landmarks_test.
# This may be replaced when dependencies are built.
