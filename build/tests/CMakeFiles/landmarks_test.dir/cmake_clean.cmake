file(REMOVE_RECURSE
  "CMakeFiles/landmarks_test.dir/landmarks_test.cc.o"
  "CMakeFiles/landmarks_test.dir/landmarks_test.cc.o.d"
  "landmarks_test"
  "landmarks_test.pdb"
  "landmarks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/landmarks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
