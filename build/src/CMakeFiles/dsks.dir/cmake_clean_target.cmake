file(REMOVE_RECURSE
  "libdsks.a"
)
