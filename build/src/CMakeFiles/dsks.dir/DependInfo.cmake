
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btree/bplus_tree.cc" "src/CMakeFiles/dsks.dir/btree/bplus_tree.cc.o" "gcc" "src/CMakeFiles/dsks.dir/btree/bplus_tree.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/dsks.dir/common/status.cc.o" "gcc" "src/CMakeFiles/dsks.dir/common/status.cc.o.d"
  "/root/repo/src/core/core_pairs.cc" "src/CMakeFiles/dsks.dir/core/core_pairs.cc.o" "gcc" "src/CMakeFiles/dsks.dir/core/core_pairs.cc.o.d"
  "/root/repo/src/core/distance_oracle.cc" "src/CMakeFiles/dsks.dir/core/distance_oracle.cc.o" "gcc" "src/CMakeFiles/dsks.dir/core/distance_oracle.cc.o.d"
  "/root/repo/src/core/div_search.cc" "src/CMakeFiles/dsks.dir/core/div_search.cc.o" "gcc" "src/CMakeFiles/dsks.dir/core/div_search.cc.o.d"
  "/root/repo/src/core/diversify.cc" "src/CMakeFiles/dsks.dir/core/diversify.cc.o" "gcc" "src/CMakeFiles/dsks.dir/core/diversify.cc.o.d"
  "/root/repo/src/core/euclidean_baseline.cc" "src/CMakeFiles/dsks.dir/core/euclidean_baseline.cc.o" "gcc" "src/CMakeFiles/dsks.dir/core/euclidean_baseline.cc.o.d"
  "/root/repo/src/core/objective.cc" "src/CMakeFiles/dsks.dir/core/objective.cc.o" "gcc" "src/CMakeFiles/dsks.dir/core/objective.cc.o.d"
  "/root/repo/src/core/ranked_search.cc" "src/CMakeFiles/dsks.dir/core/ranked_search.cc.o" "gcc" "src/CMakeFiles/dsks.dir/core/ranked_search.cc.o.d"
  "/root/repo/src/core/sk_search.cc" "src/CMakeFiles/dsks.dir/core/sk_search.cc.o" "gcc" "src/CMakeFiles/dsks.dir/core/sk_search.cc.o.d"
  "/root/repo/src/datagen/network_generator.cc" "src/CMakeFiles/dsks.dir/datagen/network_generator.cc.o" "gcc" "src/CMakeFiles/dsks.dir/datagen/network_generator.cc.o.d"
  "/root/repo/src/datagen/object_generator.cc" "src/CMakeFiles/dsks.dir/datagen/object_generator.cc.o" "gcc" "src/CMakeFiles/dsks.dir/datagen/object_generator.cc.o.d"
  "/root/repo/src/datagen/presets.cc" "src/CMakeFiles/dsks.dir/datagen/presets.cc.o" "gcc" "src/CMakeFiles/dsks.dir/datagen/presets.cc.o.d"
  "/root/repo/src/datagen/workload.cc" "src/CMakeFiles/dsks.dir/datagen/workload.cc.o" "gcc" "src/CMakeFiles/dsks.dir/datagen/workload.cc.o.d"
  "/root/repo/src/graph/ccam.cc" "src/CMakeFiles/dsks.dir/graph/ccam.cc.o" "gcc" "src/CMakeFiles/dsks.dir/graph/ccam.cc.o.d"
  "/root/repo/src/graph/dijkstra.cc" "src/CMakeFiles/dsks.dir/graph/dijkstra.cc.o" "gcc" "src/CMakeFiles/dsks.dir/graph/dijkstra.cc.o.d"
  "/root/repo/src/graph/landmarks.cc" "src/CMakeFiles/dsks.dir/graph/landmarks.cc.o" "gcc" "src/CMakeFiles/dsks.dir/graph/landmarks.cc.o.d"
  "/root/repo/src/graph/object_set.cc" "src/CMakeFiles/dsks.dir/graph/object_set.cc.o" "gcc" "src/CMakeFiles/dsks.dir/graph/object_set.cc.o.d"
  "/root/repo/src/graph/road_network.cc" "src/CMakeFiles/dsks.dir/graph/road_network.cc.o" "gcc" "src/CMakeFiles/dsks.dir/graph/road_network.cc.o.d"
  "/root/repo/src/graph/serialization.cc" "src/CMakeFiles/dsks.dir/graph/serialization.cc.o" "gcc" "src/CMakeFiles/dsks.dir/graph/serialization.cc.o.d"
  "/root/repo/src/harness/database.cc" "src/CMakeFiles/dsks.dir/harness/database.cc.o" "gcc" "src/CMakeFiles/dsks.dir/harness/database.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/dsks.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/dsks.dir/harness/experiment.cc.o.d"
  "/root/repo/src/index/inverted_file.cc" "src/CMakeFiles/dsks.dir/index/inverted_file.cc.o" "gcc" "src/CMakeFiles/dsks.dir/index/inverted_file.cc.o.d"
  "/root/repo/src/index/inverted_rtree.cc" "src/CMakeFiles/dsks.dir/index/inverted_rtree.cc.o" "gcc" "src/CMakeFiles/dsks.dir/index/inverted_rtree.cc.o.d"
  "/root/repo/src/index/kd_edge_order.cc" "src/CMakeFiles/dsks.dir/index/kd_edge_order.cc.o" "gcc" "src/CMakeFiles/dsks.dir/index/kd_edge_order.cc.o.d"
  "/root/repo/src/index/object_file.cc" "src/CMakeFiles/dsks.dir/index/object_file.cc.o" "gcc" "src/CMakeFiles/dsks.dir/index/object_file.cc.o.d"
  "/root/repo/src/index/object_index.cc" "src/CMakeFiles/dsks.dir/index/object_index.cc.o" "gcc" "src/CMakeFiles/dsks.dir/index/object_index.cc.o.d"
  "/root/repo/src/index/partition.cc" "src/CMakeFiles/dsks.dir/index/partition.cc.o" "gcc" "src/CMakeFiles/dsks.dir/index/partition.cc.o.d"
  "/root/repo/src/index/posting_file.cc" "src/CMakeFiles/dsks.dir/index/posting_file.cc.o" "gcc" "src/CMakeFiles/dsks.dir/index/posting_file.cc.o.d"
  "/root/repo/src/index/query_log.cc" "src/CMakeFiles/dsks.dir/index/query_log.cc.o" "gcc" "src/CMakeFiles/dsks.dir/index/query_log.cc.o.d"
  "/root/repo/src/index/sif.cc" "src/CMakeFiles/dsks.dir/index/sif.cc.o" "gcc" "src/CMakeFiles/dsks.dir/index/sif.cc.o.d"
  "/root/repo/src/index/sif_group.cc" "src/CMakeFiles/dsks.dir/index/sif_group.cc.o" "gcc" "src/CMakeFiles/dsks.dir/index/sif_group.cc.o.d"
  "/root/repo/src/index/sif_partitioned.cc" "src/CMakeFiles/dsks.dir/index/sif_partitioned.cc.o" "gcc" "src/CMakeFiles/dsks.dir/index/sif_partitioned.cc.o.d"
  "/root/repo/src/index/signature.cc" "src/CMakeFiles/dsks.dir/index/signature.cc.o" "gcc" "src/CMakeFiles/dsks.dir/index/signature.cc.o.d"
  "/root/repo/src/rtree/rtree.cc" "src/CMakeFiles/dsks.dir/rtree/rtree.cc.o" "gcc" "src/CMakeFiles/dsks.dir/rtree/rtree.cc.o.d"
  "/root/repo/src/spatial/mbr.cc" "src/CMakeFiles/dsks.dir/spatial/mbr.cc.o" "gcc" "src/CMakeFiles/dsks.dir/spatial/mbr.cc.o.d"
  "/root/repo/src/spatial/zorder.cc" "src/CMakeFiles/dsks.dir/spatial/zorder.cc.o" "gcc" "src/CMakeFiles/dsks.dir/spatial/zorder.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/dsks.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/dsks.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/CMakeFiles/dsks.dir/storage/disk_manager.cc.o" "gcc" "src/CMakeFiles/dsks.dir/storage/disk_manager.cc.o.d"
  "/root/repo/src/text/term_stats.cc" "src/CMakeFiles/dsks.dir/text/term_stats.cc.o" "gcc" "src/CMakeFiles/dsks.dir/text/term_stats.cc.o.d"
  "/root/repo/src/text/vocabulary.cc" "src/CMakeFiles/dsks.dir/text/vocabulary.cc.o" "gcc" "src/CMakeFiles/dsks.dir/text/vocabulary.cc.o.d"
  "/root/repo/src/text/zipf.cc" "src/CMakeFiles/dsks.dir/text/zipf.cc.o" "gcc" "src/CMakeFiles/dsks.dir/text/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
