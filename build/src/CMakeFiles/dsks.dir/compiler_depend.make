# Empty compiler generated dependencies file for dsks.
# This may be replaced when dependencies are built.
