// Road-trip planner: demonstrates the *incremental* search API directly.
// A traveller drives along a sequence of waypoints; at each stop we pull
// matching points of interest from IncrementalSkSearch one at a time and
// stop as soon as three are found within budget — no full range query is
// ever materialized. This is exactly the pull-based interface Algorithm 6
// builds on.
#include <cstdio>
#include <vector>

#include "core/sk_search.h"
#include "datagen/presets.h"
#include "datagen/workload.h"
#include "harness/database.h"

using namespace dsks;  // NOLINT

int main() {
  Database db(ScalePreset(PresetNA(), 0.5));
  IndexOptions opts;
  opts.kind = IndexKind::kSIFP;
  db.BuildIndex(opts);
  db.PrepareForQueries();

  // Waypoints: a handful of objects roughly west-to-east.
  std::vector<ObjectId> waypoints;
  {
    std::vector<std::pair<double, ObjectId>> by_x;
    for (ObjectId id = 0; id < db.objects().size(); id += 9973) {
      by_x.emplace_back(db.objects().object(id).loc.x, id);
    }
    std::sort(by_x.begin(), by_x.end());
    for (size_t i = 0; i < by_x.size(); i += by_x.size() / 5) {
      waypoints.push_back(by_x[i].second);
    }
  }

  std::printf("Planning %zu stops; at each stop: the 3 nearest objects\n"
              "matching two keywords of the local scene, within cost 800.\n\n",
              waypoints.size());

  uint64_t total_io = 0;
  for (size_t stop = 0; stop < waypoints.size(); ++stop) {
    const auto& here = db.objects().object(waypoints[stop]);
    SkQuery q;
    q.loc = NetworkLocation{here.edge, here.offset};
    q.terms = {here.terms[0],
               here.terms[here.terms.size() > 1 ? 1 : 0]};
    std::sort(q.terms.begin(), q.terms.end());
    q.terms.erase(std::unique(q.terms.begin(), q.terms.end()),
                  q.terms.end());
    q.delta_max = 800.0;

    db.ResetCounters();
    const QueryEdgeInfo qe = MakeQueryEdgeInfo(db.network(), q.loc);
    IncrementalSkSearch search(&db.ccam_graph(), db.index(), q, qe);

    std::printf("Stop %zu at (%.0f, %.0f):\n", stop + 1, here.loc.x,
                here.loc.y);
    SkResult r;
    int found = 0;
    while (found < 3 && search.Next(&r)) {
      const Point p = db.objects().object(r.id).loc;
      std::printf("  #%u at (%.0f, %.0f), cost %.0f\n", r.id, p.x, p.y,
                  r.dist);
      ++found;
    }
    if (found == 0) {
      std::printf("  (nothing matches here)\n");
    }
    // Early termination: the expansion stops as soon as we stop pulling.
    std::printf("  nodes expanded: %lu, I/O: %lu\n",
                static_cast<unsigned long>(search.stats().nodes_settled),
                static_cast<unsigned long>(db.IoCount()));
    total_io += db.IoCount();
  }
  std::printf("\nTotal trip I/O: %lu pages\n",
              static_cast<unsigned long>(total_io));
  return 0;
}
