// Quickstart: build a small road network by hand (in the spirit of the
// paper's running example, Fig. 2), place a few spatio-textual objects,
// index them, and run one boolean SK query and one diversified query.
//
//   n3 --- n4 --- n5        edge lengths 10 (horizontal) / 10 (vertical)
//   |      |      |         objects are placed on edges with keywords
//   n0 --- n1 --- n2        like "pizza", "lobster", "pancake".
#include <cstdio>
#include <memory>

#include "core/distance_oracle.h"
#include "core/div_search.h"
#include "core/sk_search.h"
#include "datagen/workload.h"
#include "graph/ccam.h"
#include "graph/object_set.h"
#include "graph/road_network.h"
#include "index/sif.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "text/vocabulary.h"

using namespace dsks;  // NOLINT

int main() {
  // 1. The road network G = (V, E, W).
  RoadNetwork net;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      net.AddNode(Point{10.0 * c, 10.0 * r});
    }
  }
  EdgeId e_bottom_left;   // n0-n1
  EdgeId e_bottom_right;  // n1-n2
  EdgeId e_top_left;      // n3-n4
  EdgeId e_vertical;      // n1-n4
  EdgeId e;
  net.AddEdge(0, 1, -1, &e_bottom_left);
  net.AddEdge(1, 2, -1, &e_bottom_right);
  net.AddEdge(3, 4, -1, &e_top_left);
  net.AddEdge(4, 5, -1, &e);
  net.AddEdge(0, 3, -1, &e);
  net.AddEdge(1, 4, -1, &e_vertical);
  net.AddEdge(2, 5, -1, &e);
  net.Finalize();

  // 2. Spatio-textual objects with human-readable keywords.
  Vocabulary vocab;
  const TermId lobster = vocab.Intern("lobster");
  const TermId pancake = vocab.Intern("pancake");
  const TermId pizza = vocab.Intern("pizza");
  const TermId coffee = vocab.Intern("coffee");

  ObjectSet objects(&net);
  ObjectId id;
  objects.Add(e_bottom_left, 2.0, {lobster, pancake}, &id);   // o0
  objects.Add(e_bottom_left, 8.0, {lobster, pancake, pizza}, &id);  // o1
  objects.Add(e_bottom_right, 5.0, {pizza, coffee}, &id);     // o2
  objects.Add(e_top_left, 4.0, {lobster, pancake}, &id);      // o3
  objects.Add(e_vertical, 5.0, {coffee}, &id);                // o4
  objects.Finalize();

  // 3. Disk-resident structures: CCAM file + signature-based inverted
  //    file, all behind one buffer pool.
  DiskManager disk;
  BufferPool pool(&disk, 128);
  const CcamFile ccam = CcamFileBuilder::Build(net, &disk);
  CcamGraph graph(&ccam, &pool);
  SifIndex index(&pool, objects, vocab.size(), /*min_postings=*/1);

  // 4. A boolean SK query: everything serving lobster AND pancake within
  //    network distance 30 of a point on edge n0-n1.
  SkQuery query;
  query.loc = NetworkLocation{e_bottom_left, 1.0};
  query.terms = {lobster, pancake};
  std::sort(query.terms.begin(), query.terms.end());
  query.delta_max = 30.0;
  const QueryEdgeInfo qe = MakeQueryEdgeInfo(net, query.loc);

  std::printf("SK query: {lobster, pancake}, delta_max=30\n");
  IncrementalSkSearch search(&graph, &index, query, qe);
  SkResult r;
  while (search.Next(&r)) {
    std::printf("  object o%u at network distance %.1f\n", r.id, r.dist);
  }

  // 5. The diversified variant: k=2 restaurants, trading closeness
  //    against spatial spread (Definition 2).
  DivQuery dq;
  dq.sk = query;
  dq.k = 2;
  dq.lambda = 0.3;  // favour spatial spread over closeness
  IncrementalSkSearch search2(&graph, &index, dq.sk, qe);
  PairwiseDistanceOracle oracle(&graph, 2.0 * dq.sk.delta_max);
  const DivSearchOutput out = DiversifiedSearchCOM(&search2, dq, &oracle);

  std::printf("Diversified (k=2, lambda=%.1f): f(S)=%.4f\n", dq.lambda,
              out.objective);
  for (const SkResult& s : out.selected) {
    std::printf("  object o%u (distance %.1f)\n", s.id, s.dist);
  }
  std::printf(
      "Note how the result spreads across the network instead of taking\n"
      "the two nearest co-located objects.\n");
  return 0;
}
