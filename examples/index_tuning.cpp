// Index tuning walkthrough: builds IF, SIF and SIF-P over the same data
// and shows where each I/O saving comes from — the edge signature test
// (SIF skips edges containing none of a query's keywords) and the edge
// partitioning (SIF-P also avoids false hits where the keywords occur on
// an edge but never inside one object). Then sweeps the SIF-P cut budget.
#include <cstdio>
#include <vector>

#include "datagen/presets.h"
#include "datagen/workload.h"
#include "harness/database.h"
#include "harness/experiment.h"

using namespace dsks;  // NOLINT

int main() {
  DatasetConfig cfg = ScalePreset(PresetSF(), 0.5);
  Database db(cfg);
  WorkloadConfig wc;
  wc.num_queries = 40;
  wc.seed = 321;
  const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);

  std::printf("Dataset %s: %zu objects on %zu edges\n\n", cfg.name.c_str(),
              db.objects().size(), db.network().num_edges());

  TablePrinter table({"index", "avg ms", "avg I/O", "edges skipped",
                      "false-hit objects", "size (MB)"});
  for (IndexKind kind :
       {IndexKind::kIF, IndexKind::kSIF, IndexKind::kSIFP}) {
    IndexOptions opts;
    opts.kind = kind;
    const auto info = db.BuildIndex(opts);
    db.PrepareForQueries();
    const SkWorkloadMetrics m = RunSkWorkload(&db, wl);
    table.AddRow({IndexKindName(kind), TablePrinter::Fmt(m.avg_millis, 2),
                  TablePrinter::Fmt(m.avg_io, 0),
                  TablePrinter::Fmt(m.avg_edges_skipped, 0),
                  TablePrinter::Fmt(m.avg_false_hit_objects, 1),
                  TablePrinter::Fmt(
                      static_cast<double>(info.size_bytes) / 1048576.0, 1)});
  }
  table.Print();

  std::printf("\nSIF-P cut budget sweep (more cuts -> fewer false hits,\n"
              "slightly larger in-memory summary):\n");
  TablePrinter sweep({"max cuts", "false-hit objects", "summary growth (KB)"});
  double base_size = 0.0;
  for (size_t cuts : {0, 1, 2, 3, 8}) {
    IndexOptions opts;
    opts.kind = cuts == 0 ? IndexKind::kSIF : IndexKind::kSIFP;
    opts.sifp.max_cuts = cuts;
    const auto info = db.BuildIndex(opts);
    db.PrepareForQueries();
    const SkWorkloadMetrics m = RunSkWorkload(&db, wl);
    if (cuts == 0) {
      base_size = static_cast<double>(info.size_bytes);
    }
    sweep.AddRow({std::to_string(cuts),
                  TablePrinter::Fmt(m.avg_false_hit_objects, 1),
                  TablePrinter::Fmt(
                      (static_cast<double>(info.size_bytes) - base_size) /
                          1024.0,
                      1)});
  }
  sweep.Print();
  return 0;
}
