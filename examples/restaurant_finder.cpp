// The paper's §1 motivating scenario at city scale: a tourist looks for
// k = 2 restaurants serving both "lobster" and "pancake" near her
// location, but wants them spatially spread so that each comes with its
// own set of nearby attractions. We compare the plain nearest results
// (λ = 1, relevance only) against the diversified results (λ = 0.7) and
// report the pairwise network distance of each answer set.
#include <cstdio>
#include <vector>

#include "core/distance_oracle.h"
#include "core/div_search.h"
#include "datagen/presets.h"
#include "datagen/workload.h"
#include "harness/database.h"

using namespace dsks;  // NOLINT

int main() {
  // A small city: the SYN preset.
  DatasetConfig city = PresetSYN();
  city.name = "demo-city";
  Database db(city);
  IndexOptions opts;
  opts.kind = IndexKind::kSIF;
  db.BuildIndex(opts);
  db.PrepareForQueries();

  std::printf("City: %zu intersections, %zu road segments, %zu restaurants\n",
              db.network().num_nodes(), db.network().num_edges(),
              db.objects().size());

  // The tourist stands at a random restaurant's door and wants the two
  // keywords that restaurant serves (term0/term1 play "lobster" and
  // "pancake").
  const auto& start = db.objects().object(1234 % db.objects().size());
  // Her two dishes: the start restaurant's two most common keywords.
  std::vector<TermId> menu = start.terms;
  std::sort(menu.begin(), menu.end(), [&db](TermId a, TermId b) {
    return db.term_stats().Frequency(a) > db.term_stats().Frequency(b);
  });
  DivQuery dq;
  dq.sk.loc = NetworkLocation{start.edge, start.offset};
  dq.sk.terms = {menu[0], menu[1]};
  std::sort(dq.sk.terms.begin(), dq.sk.terms.end());
  dq.sk.delta_max = 1500.0;
  dq.k = 2;
  const QueryEdgeInfo qe = MakeQueryEdgeInfo(db.network(), dq.sk.loc);

  auto describe = [&db](const char* title, const DivSearchOutput& out) {
    std::printf("\n%s\n", title);
    for (const SkResult& r : out.selected) {
      const Point p = db.objects().object(r.id).loc;
      std::printf("  restaurant #%u at (%.0f, %.0f), walk cost %.0f\n", r.id,
                  p.x, p.y, r.dist);
    }
    if (out.selected.size() == 2) {
      // How far apart are the two picks (for the post-dinner walk)?
      PairwiseDistanceOracle oracle(&db.ccam_graph(), 1e9);
      std::printf("  pairwise network distance: %.0f\n",
                  oracle.Distance(out.selected[0], out.selected[1]));
    }
    std::printf("  objective f(S) = %.4f over %lu candidates\n",
                out.objective,
                static_cast<unsigned long>(out.stats.candidates));
  };

  // Relevance-only: the two closest matching restaurants (often nearly
  // co-located, like p1/p2 in the paper's Fig. 1).
  dq.lambda = 1.0;
  describe("Nearest two (lambda = 1.0):", db.RunDivQuery(dq, qe, true));

  // Diversified: a slight sacrifice in closeness buys spatial spread
  // (like {p1, p4} in Fig. 1).
  dq.lambda = 0.5;
  describe("Diversified two (lambda = 0.5):", db.RunDivQuery(dq, qe, true));
  return 0;
}
