// Reproduces Fig. 11: diversified SK search (SEQ vs COM) on the four
// datasets with default parameters (l=3, δmax=500·l, k=10, λ=0.8).
// Expected shape: COM clearly outperforms SEQ everywhere because the
// diversity pruning avoids retrieving and pairwise-evaluating most
// candidates; the objective values stay equal (same answer).
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace dsks;        // NOLINT
using namespace dsks::bench; // NOLINT

int main() {
  PrintHeader("Fig. 11: diversified SK search on different datasets",
              "Fig. 11");
  const size_t num_queries = QueriesFromEnv(30);

  TablePrinter time_table({"dataset", "SEQ", "COM"});
  TablePrinter cand_table({"dataset", "SEQ", "COM", "COM pruned",
                           "COM early-term %"});
  TablePrinter obj_table({"dataset", "SEQ f(S)", "COM f(S)"});

  for (const DatasetConfig& preset : AllPresets()) {
    Database db(Scaled(preset));
    IndexOptions opts;
    opts.kind = IndexKind::kSIF;
    db.BuildIndex(opts);
    db.PrepareForQueries();
    WorkloadConfig wc;
    wc.num_queries = num_queries;
    wc.seed = 1100;
    const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);

    const DivWorkloadMetrics seq = RunDivWorkload(&db, wl, 10, 0.8, false);
    const DivWorkloadMetrics com = RunDivWorkload(&db, wl, 10, 0.8, true);
    time_table.AddRow({preset.name, TablePrinter::Fmt(seq.avg_millis, 2),
                       TablePrinter::Fmt(com.avg_millis, 2)});
    cand_table.AddRow({preset.name,
                       TablePrinter::Fmt(seq.avg_candidates, 1),
                       TablePrinter::Fmt(com.avg_candidates, 1),
                       TablePrinter::Fmt(com.avg_pruned, 1),
                       TablePrinter::Fmt(com.early_termination_rate * 100.0,
                                         0)});
    obj_table.AddRow({preset.name, TablePrinter::Fmt(seq.avg_objective, 4),
                      TablePrinter::Fmt(com.avg_objective, 4)});
  }

  std::printf("\navg query response time (ms)\n");
  time_table.Print();
  std::printf("\navg # candidate objects (COM prunes the rest)\n");
  cand_table.Print();
  std::printf("\navg objective f(S) (identical answers expected)\n");
  obj_table.Print();
  return 0;
}
