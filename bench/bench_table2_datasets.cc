// Reproduces Table 2: dataset statistics for the four (scaled) datasets.
#include <cstdio>

#include "bench/bench_common.h"
#include "common/timer.h"

using namespace dsks;        // NOLINT
using namespace dsks::bench; // NOLINT

int main() {
  PrintHeader("Table 2: Dataset Statistics", "Table 2 of the paper");
  TablePrinter table({"property", "NA", "SF", "SYN", "TW"});

  std::vector<std::string> objects_row = {"# objects"};
  std::vector<std::string> vocab_row = {"vocabulary size"};
  std::vector<std::string> kw_row = {"avg. # keywords"};
  std::vector<std::string> nodes_row = {"# nodes"};
  std::vector<std::string> edges_row = {"# edges"};
  std::vector<std::string> build_row = {"build time (ms)"};

  for (const DatasetConfig& preset : AllPresets()) {
    Timer timer;
    Database db(Scaled(preset));
    const double avg_kw =
        static_cast<double>(db.objects().TotalTermOccurrences()) /
        static_cast<double>(db.objects().size());
    objects_row.push_back(std::to_string(db.objects().size()));
    vocab_row.push_back(std::to_string(db.config().objects.vocab_size));
    kw_row.push_back(TablePrinter::Fmt(avg_kw, 1));
    nodes_row.push_back(std::to_string(db.network().num_nodes()));
    edges_row.push_back(std::to_string(db.network().num_edges()));
    build_row.push_back(TablePrinter::Fmt(timer.ElapsedMillis(), 0));
  }
  table.AddRow(objects_row);
  table.AddRow(vocab_row);
  table.AddRow(kw_row);
  table.AddRow(nodes_row);
  table.AddRow(edges_row);
  table.AddRow(build_row);
  table.Print();
  return 0;
}
