// Micro-benchmarks (google-benchmark) for the building blocks: Z-order
// encoding, Dijkstra, CCAM adjacency loads, B+tree lookups, signature
// tests, LoadObjects, core-pair maintenance and the full SK search.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "btree/bplus_tree.h"
#include "common/random.h"
#include "core/core_pairs.h"
#include "core/sk_search.h"
#include "datagen/network_generator.h"
#include "datagen/object_generator.h"
#include "datagen/workload.h"
#include "graph/ccam.h"
#include "graph/dijkstra.h"
#include "index/sif.h"
#include "spatial/zorder.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "text/term_stats.h"

namespace dsks {
namespace {

/// Shared medium-size fixture, built once.
struct World {
  std::unique_ptr<RoadNetwork> net;
  std::unique_ptr<ObjectSet> objects;
  DiskManager disk;
  std::unique_ptr<BufferPool> pool;
  CcamFile ccam;
  std::unique_ptr<CcamGraph> graph;
  std::unique_ptr<SifIndex> index;

  World() {
    NetworkGenConfig nc;
    nc.num_nodes = 4000;
    nc.seed = 1;
    net = GenerateRoadNetwork(nc);
    ObjectGenConfig oc;
    oc.num_objects = 40000;
    oc.vocab_size = 2000;
    oc.keywords_per_object = 8;
    oc.seed = 2;
    objects = GenerateObjects(*net, oc);
    pool = std::make_unique<BufferPool>(&disk, 1u << 16);
    ccam = CcamFileBuilder::Build(*net, &disk);
    graph = std::make_unique<CcamGraph>(&ccam, pool.get());
    index = std::make_unique<SifIndex>(pool.get(), *objects, 2000, 1);
  }
};

World& TheWorld() {
  static World* world = new World();
  return *world;
}

void BM_ZOrderEncode(benchmark::State& state) {
  Random rng(3);
  std::vector<Point> points(1024);
  for (auto& p : points) {
    p = {rng.UniformDouble(0, 10000), rng.UniformDouble(0, 10000)};
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ZOrder::Encode(points[i++ & 1023]));
  }
}
BENCHMARK(BM_ZOrderEncode);

void BM_DijkstraFullNetwork(benchmark::State& state) {
  World& w = TheWorld();
  NodeId src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DijkstraFromNode(*w.net, src));
    src = (src + 97) % w.net->num_nodes();
  }
}
BENCHMARK(BM_DijkstraFullNetwork);

void BM_BoundedDijkstra(benchmark::State& state) {
  World& w = TheWorld();
  const double radius = static_cast<double>(state.range(0));
  EdgeId e = 0;
  for (auto _ : state) {
    NetworkLocation loc{e, w.net->edge(e).length / 2.0};
    benchmark::DoNotOptimize(BoundedDijkstraFromLocation(*w.net, loc, radius));
    e = (e + 131) % w.net->num_edges();
  }
}
BENCHMARK(BM_BoundedDijkstra)->Arg(500)->Arg(1500)->Arg(3000);

void BM_CcamAdjacency(benchmark::State& state) {
  World& w = TheWorld();
  std::vector<AdjacentEdge> adj;
  NodeId v = 0;
  for (auto _ : state) {
    w.graph->GetAdjacency(v, &adj);
    benchmark::DoNotOptimize(adj.size());
    v = (v + 61) % w.net->num_nodes();
  }
}
BENCHMARK(BM_CcamAdjacency);

void BM_BPlusTreeGet(benchmark::State& state) {
  DiskManager disk;
  BufferPool pool(&disk, 1u << 14);
  BPlusTree tree = BPlusTree::Create(&pool);
  const uint64_t n = 100000;
  for (uint64_t k = 0; k < n; ++k) {
    tree.Insert(k * 7, k);
  }
  Random rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Get(rng.Uniform(n) * 7));
  }
}
BENCHMARK(BM_BPlusTreeGet);

void BM_SignatureTest(benchmark::State& state) {
  World& w = TheWorld();
  const SignatureFile& sig = w.index->signature();
  Random rng(5);
  for (auto _ : state) {
    const EdgeId e = static_cast<EdgeId>(rng.Uniform(w.net->num_edges()));
    const TermId t = static_cast<TermId>(rng.Uniform(2000));
    benchmark::DoNotOptimize(sig.Test(e, t));
  }
}
BENCHMARK(BM_SignatureTest);

void BM_LoadObjects(benchmark::State& state) {
  World& w = TheWorld();
  Random rng(6);
  std::vector<LoadedObject> out;
  const std::vector<TermId> terms = {0, 1, 5};
  for (auto _ : state) {
    const EdgeId e = static_cast<EdgeId>(rng.Uniform(w.net->num_edges()));
    w.index->LoadObjects(e, terms, &out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_LoadObjects);

void BM_SkSearchQuery(benchmark::State& state) {
  World& w = TheWorld();
  TermStats stats(*w.objects, 2000);
  WorkloadConfig wc;
  wc.num_queries = 64;
  wc.num_keywords = 3;
  wc.seed = 7;
  const Workload wl = GenerateWorkload(*w.objects, stats, wc);
  size_t i = 0;
  for (auto _ : state) {
    const WorkloadQuery& wq = wl.queries[i++ % wl.queries.size()];
    IncrementalSkSearch search(w.graph.get(), w.index.get(), wq.sk, wq.edge);
    SkResult r;
    size_t count = 0;
    while (search.Next(&r)) {
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SkSearchQuery);

void BM_CorePairUpdate(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Random rng(8);
  std::vector<std::vector<double>> theta(n, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      theta[i][j] = theta[j][i] = rng.NextDouble();
    }
  }
  const CorePairSet::ThetaById fn = [&theta](ObjectId a, ObjectId b) {
    return theta[a][b];
  };
  // Greedy pairs over the first ten objects (Algorithm 1 reference).
  auto greedy_init = [&theta]() {
    std::vector<ScoredPair> pairs;
    std::vector<ObjectId> remaining;
    for (ObjectId id = 0; id < 10; ++id) remaining.push_back(id);
    while (pairs.size() < 5) {
      ScoredPair best;
      bool found = false;
      ObjectId bi = 0;
      ObjectId bj = 0;
      for (size_t i = 0; i < remaining.size(); ++i) {
        for (size_t j = i + 1; j < remaining.size(); ++j) {
          const ScoredPair sp = ScoredPair::Make(
              theta[remaining[i]][remaining[j]], remaining[i], remaining[j]);
          if (!found || sp.Better(best)) {
            found = true;
            best = sp;
            bi = remaining[i];
            bj = remaining[j];
          }
        }
      }
      pairs.push_back(best);
      std::erase(remaining, bi);
      std::erase(remaining, bj);
    }
    return pairs;
  };
  for (auto _ : state) {
    CorePairSet cp(5);
    std::vector<ObjectId> seen;
    for (ObjectId id = 0; id < 10; ++id) {
      seen.push_back(id);
    }
    cp.Init(greedy_init());
    for (ObjectId id = 10; id < n; ++id) {
      seen.push_back(id);
      cp.OnArrival(id, seen, fn);
    }
    benchmark::DoNotOptimize(cp.threshold().theta);
  }
}
BENCHMARK(BM_CorePairUpdate)->Arg(50)->Arg(200);

}  // namespace
}  // namespace dsks

BENCHMARK_MAIN();
