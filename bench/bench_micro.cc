// Micro-benchmarks (google-benchmark) for the building blocks: Z-order
// encoding, Dijkstra, CCAM adjacency loads, B+tree lookups, signature
// tests, LoadObjects, core-pair maintenance, the full SK search, the flat
// hot-path containers and the pairwise distance oracle strategies.
//
// Results are written to BENCH_micro.json (google-benchmark JSON format)
// in the working directory, alongside the usual console table.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "btree/bplus_tree.h"
#include "common/flat_containers.h"
#include "common/random.h"
#include "core/core_pairs.h"
#include "core/distance_oracle.h"
#include "core/div_search.h"
#include "core/query_context.h"
#include "core/sk_search.h"
#include "datagen/network_generator.h"
#include "datagen/object_generator.h"
#include "datagen/workload.h"
#include "graph/ccam.h"
#include "graph/dijkstra.h"
#include "index/sif.h"
#include "spatial/zorder.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "text/term_stats.h"

namespace dsks {
namespace {

/// Shared medium-size fixture, built once.
struct World {
  std::unique_ptr<RoadNetwork> net;
  std::unique_ptr<ObjectSet> objects;
  DiskManager disk;
  std::unique_ptr<BufferPool> pool;
  CcamFile ccam;
  std::unique_ptr<CcamGraph> graph;
  std::unique_ptr<SifIndex> index;

  World() {
    NetworkGenConfig nc;
    nc.num_nodes = 4000;
    nc.seed = 1;
    net = GenerateRoadNetwork(nc);
    ObjectGenConfig oc;
    oc.num_objects = 40000;
    oc.vocab_size = 2000;
    oc.keywords_per_object = 8;
    oc.seed = 2;
    objects = GenerateObjects(*net, oc);
    pool = std::make_unique<BufferPool>(&disk, 1u << 16);
    ccam = CcamFileBuilder::Build(*net, &disk);
    graph = std::make_unique<CcamGraph>(&ccam, pool.get());
    index = std::make_unique<SifIndex>(pool.get(), *objects, 2000, 1);
  }
};

World& TheWorld() {
  static World* world = new World();
  return *world;
}

void BM_ZOrderEncode(benchmark::State& state) {
  Random rng(3);
  std::vector<Point> points(1024);
  for (auto& p : points) {
    p = {rng.UniformDouble(0, 10000), rng.UniformDouble(0, 10000)};
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ZOrder::Encode(points[i++ & 1023]));
  }
}
BENCHMARK(BM_ZOrderEncode);

void BM_DijkstraFullNetwork(benchmark::State& state) {
  World& w = TheWorld();
  NodeId src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DijkstraFromNode(*w.net, src));
    src = (src + 97) % w.net->num_nodes();
  }
}
BENCHMARK(BM_DijkstraFullNetwork);

void BM_BoundedDijkstra(benchmark::State& state) {
  World& w = TheWorld();
  const double radius = static_cast<double>(state.range(0));
  EdgeId e = 0;
  for (auto _ : state) {
    NetworkLocation loc{e, w.net->edge(e).length / 2.0};
    benchmark::DoNotOptimize(BoundedDijkstraFromLocation(*w.net, loc, radius));
    e = (e + 131) % w.net->num_edges();
  }
}
BENCHMARK(BM_BoundedDijkstra)->Arg(500)->Arg(1500)->Arg(3000);

void BM_CcamAdjacency(benchmark::State& state) {
  World& w = TheWorld();
  std::vector<AdjacentEdge> adj;
  NodeId v = 0;
  for (auto _ : state) {
    w.graph->GetAdjacency(v, &adj);
    benchmark::DoNotOptimize(adj.size());
    v = (v + 61) % w.net->num_nodes();
  }
}
BENCHMARK(BM_CcamAdjacency);

void BM_BPlusTreeGet(benchmark::State& state) {
  DiskManager disk;
  BufferPool pool(&disk, 1u << 14);
  BPlusTree tree = BPlusTree::Create(&pool);
  const uint64_t n = 100000;
  for (uint64_t k = 0; k < n; ++k) {
    tree.Insert(k * 7, k);
  }
  Random rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Get(rng.Uniform(n) * 7));
  }
}
BENCHMARK(BM_BPlusTreeGet);

void BM_SignatureTest(benchmark::State& state) {
  World& w = TheWorld();
  const SignatureFile& sig = w.index->signature();
  Random rng(5);
  for (auto _ : state) {
    const EdgeId e = static_cast<EdgeId>(rng.Uniform(w.net->num_edges()));
    const TermId t = static_cast<TermId>(rng.Uniform(2000));
    benchmark::DoNotOptimize(sig.Test(e, t));
  }
}
BENCHMARK(BM_SignatureTest);

void BM_LoadObjects(benchmark::State& state) {
  World& w = TheWorld();
  Random rng(6);
  std::vector<LoadedObject> out;
  const std::vector<TermId> terms = {0, 1, 5};
  for (auto _ : state) {
    const EdgeId e = static_cast<EdgeId>(rng.Uniform(w.net->num_edges()));
    w.index->LoadObjects(e, terms, &out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_LoadObjects);

void BM_SkSearchQuery(benchmark::State& state) {
  World& w = TheWorld();
  TermStats stats(*w.objects, 2000);
  WorkloadConfig wc;
  wc.num_queries = 64;
  wc.num_keywords = 3;
  wc.seed = 7;
  const Workload wl = GenerateWorkload(*w.objects, stats, wc);
  size_t i = 0;
  for (auto _ : state) {
    const WorkloadQuery& wq = wl.queries[i++ % wl.queries.size()];
    IncrementalSkSearch search(w.graph.get(), w.index.get(), wq.sk, wq.edge);
    SkResult r;
    size_t count = 0;
    while (search.Next(&r)) {
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SkSearchQuery);

void BM_CorePairUpdate(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Random rng(8);
  std::vector<std::vector<double>> theta(n, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      theta[i][j] = theta[j][i] = rng.NextDouble();
    }
  }
  const CorePairSet::ThetaById fn = [&theta](ObjectId a, ObjectId b) {
    return theta[a][b];
  };
  // Greedy pairs over the first ten objects (Algorithm 1 reference).
  auto greedy_init = [&theta]() {
    std::vector<ScoredPair> pairs;
    std::vector<ObjectId> remaining;
    for (ObjectId id = 0; id < 10; ++id) remaining.push_back(id);
    while (pairs.size() < 5) {
      ScoredPair best;
      bool found = false;
      ObjectId bi = 0;
      ObjectId bj = 0;
      for (size_t i = 0; i < remaining.size(); ++i) {
        for (size_t j = i + 1; j < remaining.size(); ++j) {
          const ScoredPair sp = ScoredPair::Make(
              theta[remaining[i]][remaining[j]], remaining[i], remaining[j]);
          if (!found || sp.Better(best)) {
            found = true;
            best = sp;
            bi = remaining[i];
            bj = remaining[j];
          }
        }
      }
      pairs.push_back(best);
      std::erase(remaining, bi);
      std::erase(remaining, bj);
    }
    return pairs;
  };
  for (auto _ : state) {
    CorePairSet cp(5);
    std::vector<ObjectId> seen;
    for (ObjectId id = 0; id < 10; ++id) {
      seen.push_back(id);
    }
    cp.Init(greedy_init());
    for (ObjectId id = 10; id < n; ++id) {
      seen.push_back(id);
      cp.OnArrival(id, seen, fn);
    }
    benchmark::DoNotOptimize(cp.threshold().theta);
  }
}
BENCHMARK(BM_CorePairUpdate)->Arg(50)->Arg(200);

/// The per-query fill-then-probe cycle of hot-path maps: insert `n` keys
/// into a cleared-but-warm map, probe them all, clear. Paired with
/// BM_UnorderedMapCycle below to show what the flat map buys.
void BM_FlatHashMapCycle(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Random rng(9);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) {
    k = rng.Uniform(1u << 30);
  }
  FlatHashMap<uint64_t, double> map;
  for (auto _ : state) {
    map.clear();
    for (uint64_t k : keys) {
      map.try_emplace(k, 1.0);
    }
    double sum = 0.0;
    for (uint64_t k : keys) {
      sum += *map.find(k);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_FlatHashMapCycle)->Arg(64)->Arg(512)->Arg(4096);

void BM_UnorderedMapCycle(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Random rng(9);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) {
    k = rng.Uniform(1u << 30);
  }
  std::unordered_map<uint64_t, double> map;
  for (auto _ : state) {
    map.clear();
    for (uint64_t k : keys) {
      map.try_emplace(k, 1.0);
    }
    double sum = 0.0;
    for (uint64_t k : keys) {
      sum += map.find(k)->second;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_UnorderedMapCycle)->Arg(64)->Arg(512)->Arg(4096);

/// Sparse per-query use of a num_nodes-sized tentative-distance array:
/// touch 256 of 65536 slots, then Reset(). The O(1) epoch reset is what
/// makes this shape affordable compared to refilling a dense vector.
void BM_EpochArrayCycle(benchmark::State& state) {
  const size_t n = 65536;
  EpochArray<double> arr;
  arr.EnsureSize(n);
  Random rng(10);
  std::vector<uint32_t> idx(256);
  for (auto& i : idx) {
    i = static_cast<uint32_t>(rng.Uniform(n));
  }
  for (auto _ : state) {
    arr.Reset();
    for (uint32_t i : idx) {
      arr.Set(i, 1.5);
    }
    double sum = 0.0;
    for (uint32_t i : idx) {
      const double* v = arr.Find(i);
      if (v != nullptr) {
        sum += *v;
      }
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_EpochArrayCycle);

/// Same sparse cycle through a dense vector that must be refilled per
/// query — the cost EpochArray::Reset avoids.
void BM_DenseVectorRefillCycle(benchmark::State& state) {
  const size_t n = 65536;
  std::vector<double> arr(n);
  Random rng(10);
  std::vector<uint32_t> idx(256);
  for (auto& i : idx) {
    i = static_cast<uint32_t>(rng.Uniform(n));
  }
  for (auto _ : state) {
    std::fill(arr.begin(), arr.end(), -1.0);
    for (uint32_t i : idx) {
      arr[i] = 1.5;
    }
    double sum = 0.0;
    for (uint32_t i : idx) {
      sum += arr[i];
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_DenseVectorRefillCycle);

/// Full diversified COM query through the pairwise oracle, comparing the
/// shared-expansion strategy (range(1) == 0) against per-object Dijkstra
/// (range(1) == 1) at k in {5, 10, 20}. Counters expose the per-object
/// field expansions — the quantity the shared strategy exists to shrink —
/// and the certified-pair ratio.
void BM_DivComOracle(benchmark::State& state) {
  World& w = TheWorld();
  const size_t k = static_cast<size_t>(state.range(0));
  const OracleStrategy strategy = state.range(1) == 0
                                      ? OracleStrategy::kSharedExpansion
                                      : OracleStrategy::kPerObjectDijkstra;
  TermStats stats(*w.objects, 2000);
  WorkloadConfig wc;
  wc.num_queries = 32;
  wc.num_keywords = 3;
  wc.seed = 11;
  const Workload wl = GenerateWorkload(*w.objects, stats, wc);
  QueryContext ctx;
  uint64_t fields = 0;
  uint64_t pairs = 0;
  uint64_t shared_exact = 0;
  uint64_t queries = 0;
  size_t i = 0;
  for (auto _ : state) {
    const WorkloadQuery& wq = wl.queries[i++ % wl.queries.size()];
    DivQuery dq;
    dq.sk = wq.sk;
    dq.k = k;
    dq.lambda = 0.8;
    IncrementalSkSearch search(w.graph.get(), w.index.get(), dq.sk, wq.edge,
                               &ctx);
    PairwiseDistanceOracle oracle(w.graph.get(), 2.0 * dq.sk.delta_max,
                                  strategy, &ctx);
    oracle.SetQueryEdge(wq.edge);
    const DivSearchOutput out = DiversifiedSearchCOM(&search, dq, &oracle);
    benchmark::DoNotOptimize(out.objective);
    fields += oracle.stats().fields_computed;
    pairs += oracle.stats().pairs_evaluated;
    shared_exact += oracle.stats().pairs_shared_exact;
    ++queries;
  }
  const double q = queries > 0 ? static_cast<double>(queries) : 1.0;
  state.counters["fields_per_query"] = static_cast<double>(fields) / q;
  state.counters["pairs_per_query"] = static_cast<double>(pairs) / q;
  state.counters["shared_exact_per_query"] =
      static_cast<double>(shared_exact) / q;
}
BENCHMARK(BM_DivComOracle)
    ->ArgNames({"k", "per_object"})
    ->Args({5, 0})
    ->Args({5, 1})
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({20, 0})
    ->Args({20, 1});

}  // namespace
}  // namespace dsks

int main(int argc, char** argv) {
  // Default the JSON artifact to BENCH_micro.json in the working directory
  // (tools/check.sh runs from the repo root, so it lands next to
  // BENCH_throughput.json); an explicit --benchmark_out wins.
  std::vector<char*> args(argv, argv + argc);
  char out_flag[] = "--benchmark_out=BENCH_micro.json";
  char fmt_flag[] = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) {
      has_out = true;
    }
  }
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
