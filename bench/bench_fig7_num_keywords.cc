// Reproduces Fig. 7: SK search on NA as the number of query keywords l
// grows from 1 to 4 — (a) response time, (b) # I/O. Expected shape: all
// methods degrade with l (δmax grows as 500·l); SIF beats IF by avoiding
// false-hit I/O and SIF-P beats SIF.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace dsks;        // NOLINT
using namespace dsks::bench; // NOLINT

int main() {
  PrintHeader("Fig. 7: effect of the number of query keywords (l)",
              "Fig. 7(a)-(b), dataset NA");
  const size_t num_queries = QueriesFromEnv(60);

  Database db(Scaled(PresetNA()));
  const std::vector<IndexKind> kinds = {IndexKind::kIF, IndexKind::kSIF,
                                        IndexKind::kSIFP};
  const std::vector<size_t> ls = {1, 2, 3, 4};

  // One workload per l (δmax = 500·l, §5), shared by the three indexes.
  std::vector<Workload> workloads;
  for (size_t l : ls) {
    WorkloadConfig wc;
    wc.num_queries = num_queries;
    wc.num_keywords = l;
    wc.seed = 7000 + l;
    workloads.push_back(GenerateWorkload(db.objects(), db.term_stats(), wc));
  }

  // metrics[kind][l]
  std::vector<std::vector<SkWorkloadMetrics>> metrics(kinds.size());
  for (size_t k = 0; k < kinds.size(); ++k) {
    IndexOptions opts;
    opts.kind = kinds[k];
    db.BuildIndex(opts);
    db.PrepareForQueries();
    for (const Workload& wl : workloads) {
      metrics[k].push_back(RunSkWorkload(&db, wl));
    }
  }

  TablePrinter time_table({"l", "IF", "SIF", "SIF-P"});
  TablePrinter io_table({"l", "IF", "SIF", "SIF-P"});
  TablePrinter fh_table({"l", "IF", "SIF", "SIF-P"});
  for (size_t i = 0; i < ls.size(); ++i) {
    std::vector<std::string> time_row = {std::to_string(ls[i])};
    std::vector<std::string> io_row = {std::to_string(ls[i])};
    std::vector<std::string> fh_row = {std::to_string(ls[i])};
    for (size_t k = 0; k < kinds.size(); ++k) {
      time_row.push_back(TablePrinter::Fmt(metrics[k][i].avg_millis, 2));
      io_row.push_back(TablePrinter::Fmt(metrics[k][i].avg_io, 0));
      fh_row.push_back(
          TablePrinter::Fmt(metrics[k][i].avg_false_hit_objects, 1));
    }
    time_table.AddRow(time_row);
    io_table.AddRow(io_row);
    fh_table.AddRow(fh_row);
  }

  std::printf("\n(a) avg query response time (ms)\n");
  time_table.Print();
  std::printf("\n(b) avg # I/O accesses per query\n");
  io_table.Print();
  std::printf("\n(b') avg # objects loaded by false hits per query\n");
  fh_table.Print();
  return 0;
}
