// Reproduces Fig. 12: diversified search (SEQ vs COM) on NA as the number
// of query keywords l grows 1..4 (δmax = 500·l). Expected shape: COM
// outperforms SEQ at every l; both involve more objects as l grows since
// the search region widens with δmax.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace dsks;        // NOLINT
using namespace dsks::bench; // NOLINT

int main() {
  PrintHeader("Fig. 12: diversified search vs number of query keywords (l)",
              "Fig. 12, dataset NA");
  const size_t num_queries = QueriesFromEnv(30);

  Database db(Scaled(PresetNA()));
  IndexOptions opts;
  opts.kind = IndexKind::kSIF;
  db.BuildIndex(opts);
  db.PrepareForQueries();

  TablePrinter table({"l", "SEQ ms", "COM ms", "SEQ cands", "COM cands"});
  for (size_t l = 1; l <= 4; ++l) {
    WorkloadConfig wc;
    wc.num_queries = num_queries;
    wc.num_keywords = l;
    wc.seed = 1200 + l;
    const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);
    const DivWorkloadMetrics seq = RunDivWorkload(&db, wl, 10, 0.8, false);
    const DivWorkloadMetrics com = RunDivWorkload(&db, wl, 10, 0.8, true);
    table.AddRow({std::to_string(l), TablePrinter::Fmt(seq.avg_millis, 2),
                  TablePrinter::Fmt(com.avg_millis, 2),
                  TablePrinter::Fmt(seq.avg_candidates, 1),
                  TablePrinter::Fmt(com.avg_candidates, 1)});
  }
  std::printf("\navg response time and candidates per query\n");
  table.Print();
  return 0;
}
