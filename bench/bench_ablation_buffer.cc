// Ablation for the experimental setup's buffer budget (§5 fixes an LRU
// buffer of 2% of the dataset): how sensitive are IF and SIF to the cache
// size? SIF needs fewer distinct pages per query (signatures skip most
// edges), so it degrades more gracefully as the buffer shrinks.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace dsks;        // NOLINT
using namespace dsks::bench; // NOLINT

int main() {
  PrintHeader("Ablation: LRU buffer size", "the §5 buffer setting");
  const size_t num_queries = QueriesFromEnv(50);

  Database db(Scaled(PresetNA()));
  WorkloadConfig wc;
  wc.num_queries = num_queries;
  wc.seed = 808;
  const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);

  TablePrinter table({"buffer %", "IF I/O", "IF ms", "SIF I/O", "SIF ms"});
  const std::vector<double> fractions = {0.005, 0.01, 0.02, 0.04, 0.08};

  // metrics[index][fraction]
  std::vector<std::vector<SkWorkloadMetrics>> metrics(2);
  const IndexKind kinds[2] = {IndexKind::kIF, IndexKind::kSIF};
  for (int k = 0; k < 2; ++k) {
    IndexOptions opts;
    opts.kind = kinds[k];
    db.BuildIndex(opts);
    for (double f : fractions) {
      db.PrepareForQueries(f, /*min_frames=*/16);
      metrics[k].push_back(RunSkWorkload(&db, wl));
    }
  }
  for (size_t i = 0; i < fractions.size(); ++i) {
    table.AddRow({TablePrinter::Fmt(fractions[i] * 100.0, 1),
                  TablePrinter::Fmt(metrics[0][i].avg_io, 0),
                  TablePrinter::Fmt(metrics[0][i].avg_millis, 2),
                  TablePrinter::Fmt(metrics[1][i].avg_io, 0),
                  TablePrinter::Fmt(metrics[1][i].avg_millis, 2)});
  }
  table.Print();
  std::printf("\nExpected: both indexes speed up with more cache; SIF stays\n"
              "ahead of IF at every size.\n");
  return 0;
}
