#ifndef DSKS_BENCH_BENCH_COMMON_H_
#define DSKS_BENCH_BENCH_COMMON_H_

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "datagen/presets.h"
#include "datagen/workload.h"
#include "harness/database.h"
#include "harness/experiment.h"
#include "storage/disk_backend.h"

namespace dsks::bench {

/// Every bench binary honours two environment knobs so that the same code
/// can run as a quick smoke test or as a fuller experiment:
///   DSKS_BENCH_SCALE   — multiplies dataset sizes (default 1.0)
///   DSKS_BENCH_QUERIES — queries per workload (default per-bench)
inline double ScaleFromEnv() {
  const char* s = std::getenv("DSKS_BENCH_SCALE");
  return s == nullptr ? 1.0 : std::atof(s);
}

inline size_t QueriesFromEnv(size_t fallback) {
  const char* s = std::getenv("DSKS_BENCH_QUERIES");
  return s == nullptr ? fallback : static_cast<size_t>(std::atoll(s));
}

inline DatasetConfig Scaled(const DatasetConfig& preset) {
  const double scale = ScaleFromEnv();
  return scale == 1.0 ? preset : ScalePreset(preset, scale);
}

/// Storage backend for a bench run, chosen by `--backend=sim|file` on the
/// command line or the DSKS_BENCH_BACKEND env var (the flag wins). The
/// file backend writes to a fresh temp file removed on destruction, so a
/// bench run leaves nothing behind. Every JSON record a bench emits must
/// carry the backend name — numbers from the two backends are different
/// experiments and must never be compared silently (see perf_gate.py).
class BenchBackend {
 public:
  BenchBackend(int argc, char** argv) {
    std::string name;
    if (const char* env = std::getenv("DSKS_BENCH_BACKEND")) {
      name = env;
    }
    bool o_direct = std::getenv("DSKS_BENCH_O_DIRECT") != nullptr;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--backend=", 10) == 0) {
        name = argv[i] + 10;
      } else if (std::strcmp(argv[i], "--o-direct") == 0) {
        o_direct = true;
      }
    }
    if (name == "file") {
      options_.backend = DiskBackendKind::kFile;
      options_.path =
          "/tmp/dsks_bench_" + std::to_string(::getpid()) + ".pages";
      owns_files_ = true;
      // O_DIRECT bypasses the OS page cache, so "cold" really means the
      // device: without it a cold-cache A/B on a warm page cache measures
      // memcpy, not I/O overlap.
      options_.o_direct = o_direct;
    } else if (!name.empty() && name != "sim") {
      std::fprintf(stderr, "--backend: want 'sim' or 'file', got '%s'\n",
                   name.c_str());
      std::exit(2);
    }

    // I/O regime, same flag-beats-env precedence: `--io=async` serves
    // speculative reads on an async engine (io_uring or worker pool);
    // `--io-depth=N` bounds pages in flight. Like the backend, the regime
    // is stamped into every JSON record — sync and async numbers are
    // different experiments.
    std::string io;
    if (const char* env = std::getenv("DSKS_BENCH_IO")) {
      io = env;
    }
    std::string depth;
    if (const char* env = std::getenv("DSKS_BENCH_IO_DEPTH")) {
      depth = env;
    }
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--io=", 5) == 0) {
        io = argv[i] + 5;
      } else if (std::strncmp(argv[i], "--io-depth=", 11) == 0) {
        depth = argv[i] + 11;
      }
    }
    if (io == "async") {
      options_.io = IoMode::kAsync;
    } else if (!io.empty() && io != "sync") {
      std::fprintf(stderr, "--io: want 'sync' or 'async', got '%s'\n",
                   io.c_str());
      std::exit(2);
    }
    if (!depth.empty()) {
      const long long d = std::atoll(depth.c_str());
      if (d < 1) {
        std::fprintf(stderr, "--io-depth: want >= 1, got '%s'\n",
                     depth.c_str());
        std::exit(2);
      }
      options_.io_depth = static_cast<size_t>(d);
    }
  }
  ~BenchBackend() {
    if (owns_files_) {
      std::remove(options_.path.c_str());
      std::remove((options_.path + ".crc").c_str());
    }
  }

  BenchBackend(const BenchBackend&) = delete;
  BenchBackend& operator=(const BenchBackend&) = delete;

  const DiskOptions& options() const { return options_; }
  const char* name() const { return DiskBackendKindName(options_.backend); }
  const char* io_name() const { return IoModeName(options_.io); }

 private:
  DiskOptions options_;
  bool owns_files_ = false;
};

/// Writes accumulated JSON object strings as one JSON array file. The bench
/// binaries drop these next to wherever they are run from — tools/check.sh
/// runs them from the repo root so BENCH_*.json land there for scripted
/// comparison (perf regression gate, EXPERIMENTS.md numbers).
inline void WriteJsonArrayFile(const std::string& path,
                               const std::vector<std::string>& objects) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "WARN: cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < objects.size(); ++i) {
    std::fprintf(f, "  %s%s\n", objects[i].c_str(),
                 i + 1 < objects.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu records)\n", path.c_str(), objects.size());
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("(reproduces %s; datasets are the scaled presets of DESIGN.md)\n",
              paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace dsks::bench

#endif  // DSKS_BENCH_BENCH_COMMON_H_
