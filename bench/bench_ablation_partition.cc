// Ablation for §3.3 (reported in §5: "the greedy approach is up to two
// orders of magnitude faster than the dynamic programming based approach
// while they achieve similar performance in terms of I/O costs reduced"):
// on the heavy edges of a dataset, compare Algorithm 4's exact DP against
// the greedy heuristic in partition quality (ξ cost) and build time.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "index/partition.h"
#include "index/query_log.h"

using namespace dsks;        // NOLINT
using namespace dsks::bench; // NOLINT

int main() {
  PrintHeader("Ablation: DP (Algorithm 4) vs greedy edge partitioning",
              "the §5 remark on SIF-P construction");
  Database db(Scaled(ScalePreset(PresetSYN(), 0.5)));
  const auto& objects = db.objects();
  const auto& net = db.network();

  auto provider = MakeQueryLogProvider(QueryLogMode::kFrequency, {}, 3, 8,
                                       /*seed=*/777);

  // Heavy edges, capped so the cubic DP stays tractable.
  struct EdgeCase {
    EdgeId edge;
    std::vector<std::vector<TermId>> term_sets;
    std::vector<LogQuery> log;
  };
  std::vector<EdgeCase> cases;
  for (EdgeId e = 0; e < net.num_edges() && cases.size() < 200; ++e) {
    const auto on_edge = objects.ObjectsOnEdge(e);
    if (on_edge.size() < 8 || on_edge.size() > 28) {
      continue;
    }
    EdgeCase c;
    c.edge = e;
    for (ObjectId id : on_edge) {
      c.term_sets.push_back(objects.object(id).terms);
    }
    c.log = provider(e, c.term_sets);
    if (!c.log.empty()) {
      cases.push_back(std::move(c));
    }
  }
  std::printf("%zu heavy edges (8-28 objects each)\n\n", cases.size());

  TablePrinter table({"cuts", "DP cost", "greedy cost", "no-cut cost",
                      "DP ms", "greedy ms", "speedup"});
  for (size_t cuts : {1, 2, 3, 5}) {
    double dp_cost = 0.0;
    double greedy_cost = 0.0;
    double nocut_cost = 0.0;
    Timer dp_timer;
    for (const EdgeCase& c : cases) {
      dp_cost += PartitionCost(c.term_sets,
                               DpPartition(c.term_sets, c.log, cuts), c.log);
    }
    const double dp_ms = dp_timer.ElapsedMillis();
    Timer greedy_timer;
    for (const EdgeCase& c : cases) {
      greedy_cost += PartitionCost(
          c.term_sets, GreedyPartition(c.term_sets, c.log, cuts), c.log);
    }
    const double greedy_ms = greedy_timer.ElapsedMillis();
    for (const EdgeCase& c : cases) {
      nocut_cost += PartitionCost(c.term_sets, EdgePartition{}, c.log);
    }
    table.AddRow({std::to_string(cuts), TablePrinter::Fmt(dp_cost, 1),
                  TablePrinter::Fmt(greedy_cost, 1),
                  TablePrinter::Fmt(nocut_cost, 1),
                  TablePrinter::Fmt(dp_ms, 1),
                  TablePrinter::Fmt(greedy_ms, 1),
                  TablePrinter::Fmt(dp_ms / std::max(0.001, greedy_ms), 1)});
  }
  table.Print();
  std::printf(
      "\nExpected: greedy cost within a few %% of the DP optimum at a\n"
      "fraction of the time, widening with the cut budget.\n");
  return 0;
}
