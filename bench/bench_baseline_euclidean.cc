// Makes the paper's §1 motivation measurable: a Euclidean spatial-keyword
// index forced into filter-and-refine on a road network versus the
// network-native incremental expansion (Algorithm 3 + SIF). The Euclidean
// filter admits every object within the straight-line δmax circle — many
// of which are network-unreachable within δmax — and still pays a network
// expansion to verify them.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "common/macros.h"
#include "common/timer.h"
#include "core/euclidean_baseline.h"
#include "core/sk_search.h"
#include "graph/ccam.h"
#include "index/inverted_rtree.h"
#include "index/sif.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

using namespace dsks;        // NOLINT
using namespace dsks::bench; // NOLINT

int main() {
  PrintHeader("Baseline: Euclidean filter-and-refine vs network expansion",
              "the §1/§6 motivation for network-native indexing");
  const size_t num_queries = QueriesFromEnv(60);

  TablePrinter table({"dataset", "INE+SIF ms", "Euclid F&R ms",
                      "euclid candidates", "answers"});
  for (const DatasetConfig& preset : AllPresets()) {
    Database db(Scaled(preset));
    WorkloadConfig wc;
    wc.num_queries = num_queries;
    wc.seed = 2718;
    const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);

    // Network-native: SIF through the Database facade.
    IndexOptions opts;
    opts.kind = IndexKind::kSIF;
    db.BuildIndex(opts);
    db.PrepareForQueries();
    double ine_ms = 0.0;
    double answers = 0.0;
    {
      db.disk()->set_read_delay_us(50.0);
      Timer timer;
      for (const WorkloadQuery& wq : wl.queries) {
        answers += static_cast<double>(db.RunSkQuery(wq.sk, wq.edge).size());
      }
      ine_ms = timer.ElapsedMillis() / static_cast<double>(wl.queries.size());
      db.disk()->set_read_delay_us(0.0);
      answers /= static_cast<double>(wl.queries.size());
    }

    // Euclidean filter-and-refine on the same data, own disk + pool.
    IndexOptions ir;
    ir.kind = IndexKind::kIR;
    db.BuildIndex(ir);
    db.PrepareForQueries();
    auto* index = static_cast<InvertedRTreeIndex*>(db.index());
    double fr_ms = 0.0;
    double candidates = 0.0;
    {
      db.disk()->set_read_delay_us(50.0);
      Timer timer;
      for (const WorkloadQuery& wq : wl.queries) {
        EuclideanBaselineStats stats;
        std::vector<SkResult> results;
        const Status s =
            EuclideanFilterRefine(&db.ccam_graph(), db.network(), index,
                                  wq.sk, wq.edge, &results, &stats);
        DSKS_CHECK_MSG(s.ok(), "fault-free baseline must not fail");
        candidates += static_cast<double>(stats.euclidean_candidates);
      }
      fr_ms = timer.ElapsedMillis() / static_cast<double>(wl.queries.size());
      db.disk()->set_read_delay_us(0.0);
      candidates /= static_cast<double>(wl.queries.size());
    }

    table.AddRow({preset.name, TablePrinter::Fmt(ine_ms, 2),
                  TablePrinter::Fmt(fr_ms, 2),
                  TablePrinter::Fmt(candidates, 1),
                  TablePrinter::Fmt(answers, 1)});
  }
  table.Print();
  std::printf(
      "\nExpected: the Euclidean filter admits far more candidates than\n"
      "there are answers, and the combined filter+verify time exceeds the\n"
      "incremental network expansion.\n");
  return 0;
}
