// Reproduces Fig. 15: diversified search (SEQ vs COM) on NA as λ grows
// 0.5..0.9. Expected shape: SEQ is insensitive to λ; COM becomes *more*
// efficient as λ grows since prioritizing closeness lets the expansion
// terminate earlier.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace dsks;        // NOLINT
using namespace dsks::bench; // NOLINT

int main() {
  PrintHeader("Fig. 15: diversified search vs relevance weight (lambda)",
              "Fig. 15, dataset NA");
  const size_t num_queries = QueriesFromEnv(30);

  Database db(Scaled(PresetNA()));
  IndexOptions opts;
  opts.kind = IndexKind::kSIF;
  db.BuildIndex(opts);
  db.PrepareForQueries();

  WorkloadConfig wc;
  wc.num_queries = num_queries;
  wc.seed = 1500;
  const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);

  TablePrinter table({"lambda", "SEQ ms", "COM ms", "COM cands",
                      "COM early-term %"});
  for (double lambda : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    const DivWorkloadMetrics seq = RunDivWorkload(&db, wl, 10, lambda, false);
    const DivWorkloadMetrics com = RunDivWorkload(&db, wl, 10, lambda, true);
    table.AddRow({TablePrinter::Fmt(lambda, 1),
                  TablePrinter::Fmt(seq.avg_millis, 2),
                  TablePrinter::Fmt(com.avg_millis, 2),
                  TablePrinter::Fmt(com.avg_candidates, 1),
                  TablePrinter::Fmt(com.early_termination_rate * 100.0, 0)});
  }
  std::printf("\navg response time per query\n");
  table.Print();
  return 0;
}
