// Reproduces Fig. 14: diversified search (SEQ vs COM) on NA as k grows
// 5..20. Expected shape: SEQ is insensitive to k (its cost is retrieving
// all candidates); COM degrades with k because a larger k lowers θ_T and
// weakens the pruning, yet stays well below SEQ.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace dsks;        // NOLINT
using namespace dsks::bench; // NOLINT

int main() {
  PrintHeader("Fig. 14: diversified search vs result size (k)",
              "Fig. 14, dataset NA");
  const size_t num_queries = QueriesFromEnv(30);

  Database db(Scaled(PresetNA()));
  IndexOptions opts;
  opts.kind = IndexKind::kSIF;
  db.BuildIndex(opts);
  db.PrepareForQueries();

  WorkloadConfig wc;
  wc.num_queries = num_queries;
  wc.seed = 1400;
  const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);

  TablePrinter table({"k", "SEQ ms", "COM ms", "COM cands",
                      "COM early-term %"});
  for (size_t k : {5, 10, 15, 20}) {
    const DivWorkloadMetrics seq = RunDivWorkload(&db, wl, k, 0.8, false);
    const DivWorkloadMetrics com = RunDivWorkload(&db, wl, k, 0.8, true);
    table.AddRow({std::to_string(k), TablePrinter::Fmt(seq.avg_millis, 2),
                  TablePrinter::Fmt(com.avg_millis, 2),
                  TablePrinter::Fmt(com.avg_candidates, 1),
                  TablePrinter::Fmt(com.early_termination_rate * 100.0, 0)});
  }
  std::printf("\navg response time per query\n");
  table.Print();
  return 0;
}
