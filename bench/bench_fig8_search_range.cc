// Reproduces Fig. 8: effect of the search range δmax — (a) response time
// of IF/SIF/SIF-P on NA as δmax grows 250..1500, (b) # candidate objects
// on all four datasets. Expected shape: IF degrades much faster than
// SIF/SIF-P because false-hit I/O grows with the number of visited edges;
// candidates grow superlinearly with δmax everywhere.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace dsks;        // NOLINT
using namespace dsks::bench; // NOLINT

int main() {
  PrintHeader("Fig. 8: effect of the search range (delta_max)",
              "Fig. 8(a)-(b)");
  const size_t num_queries = QueriesFromEnv(60);
  const std::vector<double> ranges = {250, 500, 750, 1000, 1250, 1500};

  // (a) response time on NA.
  {
    Database db(Scaled(PresetNA()));
    std::vector<Workload> workloads;
    for (double r : ranges) {
      WorkloadConfig wc;
      wc.num_queries = num_queries;
      wc.delta_max_override = r;
      wc.seed = 8800;  // same queries, different range
      workloads.push_back(
          GenerateWorkload(db.objects(), db.term_stats(), wc));
    }
    const std::vector<IndexKind> kinds = {IndexKind::kIF, IndexKind::kSIF,
                                          IndexKind::kSIFP};
    std::vector<std::vector<SkWorkloadMetrics>> metrics(kinds.size());
    for (size_t k = 0; k < kinds.size(); ++k) {
      IndexOptions opts;
      opts.kind = kinds[k];
      db.BuildIndex(opts);
      db.PrepareForQueries();
      for (const Workload& wl : workloads) {
        metrics[k].push_back(RunSkWorkload(&db, wl));
      }
    }
    TablePrinter table({"delta_max", "IF", "SIF", "SIF-P"});
    for (size_t i = 0; i < ranges.size(); ++i) {
      table.AddRow({TablePrinter::Fmt(ranges[i], 0),
                    TablePrinter::Fmt(metrics[0][i].avg_millis, 2),
                    TablePrinter::Fmt(metrics[1][i].avg_millis, 2),
                    TablePrinter::Fmt(metrics[2][i].avg_millis, 2)});
    }
    std::printf("\n(a) avg query response time (ms), dataset NA\n");
    table.Print();
  }

  // (b) # candidates on the four datasets (SIF index).
  {
    TablePrinter table({"delta_max", "NA", "SF", "SYN", "TW"});
    std::vector<std::vector<std::string>> rows(ranges.size());
    for (size_t i = 0; i < ranges.size(); ++i) {
      rows[i].push_back(TablePrinter::Fmt(ranges[i], 0));
    }
    for (const DatasetConfig& preset : AllPresets()) {
      Database db(Scaled(preset));
      IndexOptions opts;
      opts.kind = IndexKind::kSIF;
      db.BuildIndex(opts);
      db.PrepareForQueries();
      for (size_t i = 0; i < ranges.size(); ++i) {
        WorkloadConfig wc;
        wc.num_queries = num_queries;
        wc.delta_max_override = ranges[i];
        wc.seed = 8801;
        const Workload wl =
            GenerateWorkload(db.objects(), db.term_stats(), wc);
        rows[i].push_back(
            TablePrinter::Fmt(RunSkWorkload(&db, wl).avg_candidates, 1));
      }
    }
    for (auto& row : rows) {
      table.AddRow(row);
    }
    std::printf("\n(b) avg # candidate objects per query\n");
    table.Print();
  }
  return 0;
}
