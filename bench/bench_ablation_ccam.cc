// Ablation for the CCAM storage layout (§2.2): how much I/O does the
// connectivity-clustered placement save during network expansion compared
// to random page assignment, and what does the refinement pass add on top
// of plain Z-order packing?
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "core/sk_search.h"
#include "datagen/network_generator.h"
#include "datagen/object_generator.h"
#include "graph/ccam.h"
#include "index/sif.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

using namespace dsks;        // NOLINT
using namespace dsks::bench; // NOLINT

int main() {
  PrintHeader("Ablation: CCAM node placement policies",
              "the §2.2 storage layout choice");
  const size_t num_queries = QueriesFromEnv(60);

  const DatasetConfig cfg = Scaled(PresetNA());
  // Build the dataset once; each placement gets its own disk + pool so
  // buffer effects are comparable.
  auto net = GenerateRoadNetwork(cfg.network);
  auto objects = GenerateObjects(*net, cfg.objects);
  TermStats stats(*objects, cfg.objects.vocab_size);
  WorkloadConfig wc;
  wc.num_queries = num_queries;
  wc.seed = 777;
  const Workload wl = GenerateWorkload(*objects, stats, wc);

  TablePrinter table({"placement", "connectivity ratio",
                      "graph misses/query", "avg ms"});
  struct Variant {
    const char* name;
    CcamPlacement placement;
  };
  for (const Variant& v :
       {Variant{"random", CcamPlacement::kRandom},
        Variant{"z-order", CcamPlacement::kZOrder},
        Variant{"z-order+refine", CcamPlacement::kZOrderRefined}}) {
    DiskManager disk;
    // Separate pools isolate the graph traffic from the index traffic:
    // the CCAM pool gets only ~3% of the CCAM file, so placement quality
    // shows up directly as page misses.
    BufferPool index_pool(&disk, 1u << 16);
    CcamFile ccam = CcamFileBuilder::Build(*net, &disk, v.placement);
    BufferPool ccam_pool(
        &disk, std::max<size_t>(4, ccam.num_pages() * 3 / 100));
    CcamGraph graph(&ccam, &ccam_pool);
    SifIndex index(&index_pool, *objects, cfg.objects.vocab_size);
    index_pool.FlushAll();
    index_pool.Clear();
    index_pool.SetCapacity(std::max<size_t>(
        64, static_cast<size_t>(
                0.02 * static_cast<double>(index.SizeBytes() / kPageSize))));
    disk.mutable_stats()->Reset();
    ccam_pool.mutable_stats()->Reset();
    disk.set_read_delay_us(50.0);

    Timer timer;
    for (const WorkloadQuery& wq : wl.queries) {
      IncrementalSkSearch search(&graph, &index, wq.sk, wq.edge);
      SkResult r;
      while (search.Next(&r)) {
      }
    }
    const double ms =
        timer.ElapsedMillis() / static_cast<double>(wl.queries.size());
    const double graph_io = static_cast<double>(ccam_pool.stats().misses) /
                            static_cast<double>(wl.queries.size());
    table.AddRow({v.name,
                  TablePrinter::Fmt(CcamConnectivityRatio(*net, ccam), 3),
                  TablePrinter::Fmt(graph_io, 1), TablePrinter::Fmt(ms, 2)});
  }
  table.Print();
  std::printf(
      "\nExpected: locality rises random -> z-order -> refined, and the\n"
      "expansion I/O falls accordingly.\n");
  return 0;
}
