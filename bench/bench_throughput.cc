// Concurrent query throughput: many SK / diversified searches sharing one
// disk-resident SIF index and one LRU buffer pool, executed by the
// QueryExecutor thread pool at 1/2/4/8 threads. The paper's experiments
// (§5) are sequential; this bench measures what the latched storage layer
// adds on top — aggregate queries/sec and tail latency under concurrency.
//
// Knobs: DSKS_BENCH_SCALE, DSKS_BENCH_QUERIES (as everywhere),
// DSKS_BENCH_THREADS (comma list, default "1,2,4,8"),
// DSKS_IO_DELAY_US (per-read simulated latency, default 50).
//
// Besides the table, every measurement is emitted as one JSON line
// (prefix "JSON ") for scripted consumption. The measured series run
// untraced (tracing must not be on the timed path); a separate
// single-threaded traced pass per workload emits a "phase_profile" record
// attributing time and I/O to the query phases.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "harness/query_executor.h"
#include "obs/trace.h"

using namespace dsks;         // NOLINT
using namespace dsks::bench;  // NOLINT

namespace {

std::vector<size_t> ThreadCountsFromEnv() {
  const char* s = std::getenv("DSKS_BENCH_THREADS");
  if (s == nullptr) {
    return {1, 2, 4, 8};
  }
  std::vector<size_t> counts;
  const std::string csv = s;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) {
      comma = csv.size();
    }
    const size_t n =
        static_cast<size_t>(std::atoll(csv.substr(pos, comma - pos).c_str()));
    if (n > 0) {
      counts.push_back(n);
    }
    pos = comma + 1;
  }
  return counts.empty() ? std::vector<size_t>{1} : counts;
}

/// Accumulates every measurement for the BENCH_throughput.json artifact.
std::vector<std::string>& JsonRecords() {
  static std::vector<std::string> records;
  return records;
}

/// Set once in main from BenchBackend; stamped into every JSON record so
/// sim and file numbers can never be compared silently.
const char* g_backend_name = "sim";

void EmitJson(const char* workload, const ThroughputMetrics& m,
              double speedup) {
  // hist_* come from the merged per-worker histograms (bucketed, so upper
  // bounds); the exact sample percentiles stay the primary numbers.
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\"bench\":\"throughput\",\"backend\":\"%s\",\"workload\":\"%s\","
      "\"threads\":%zu,"
      "\"queries\":%zu,\"wall_ms\":%.2f,\"qps\":%.1f,\"avg_ms\":%.3f,"
      "\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f,\"speedup\":%.2f,"
      "\"errors\":%llu,\"error_rate\":%.6f,"
      "\"hist_count\":%llu,\"hist_p50_ms\":%.3f,\"hist_p99_ms\":%.3f}",
      g_backend_name, workload, m.num_threads, m.queries, m.wall_millis, m.qps,
      m.avg_millis,
      m.p50_millis, m.p95_millis, m.p99_millis, speedup,
      static_cast<unsigned long long>(m.errors), m.error_rate,
      static_cast<unsigned long long>(m.histogram.count),
      m.histogram.Percentile(50), m.histogram.Percentile(99));
  std::printf("JSON %s\n", buf);
  JsonRecords().push_back(buf);
}

void EmitPhaseProfile(const char* workload, Database* db, const Workload& wl,
                      bool div) {
  // Single-threaded so the counter deltas are exact (no other query's
  // traffic lands inside a span); spin-wait delay like the sequential
  // harness so phase times include the simulated I/O cost.
  ScopedIoDelay delay(db);
  db->ResetCounters();
  obs::QueryTrace trace;
  trace.BindIoSources(&db->pool()->stats(), &db->disk()->stats());
  QueryContext ctx;
  ctx.trace = &trace;
  const size_t n = std::min<size_t>(wl.queries.size(), 32);
  for (size_t i = 0; i < n; ++i) {
    const WorkloadQuery& wq = wl.queries[i];
    if (div) {
      DivQuery dq;
      dq.sk = wq.sk;
      dq.k = 10;
      dq.lambda = 0.8;
      db->RunDivQuery(dq, wq.edge, /*use_com=*/true, &ctx);
    } else {
      db->RunSkQuery(wq.sk, wq.edge, &ctx);
    }
  }
  const auto totals = trace.AggregateByPhase();
  std::string buf;
  char item[256];
  std::snprintf(item, sizeof(item),
                "{\"bench\":\"throughput\",\"backend\":\"%s\","
                "\"workload\":\"%s\",\"queries\":%zu,\"phase_profile\":{",
                g_backend_name, workload, n);
  buf += item;
  bool first = true;
  for (size_t p = 0; p < obs::kNumPhases; ++p) {
    const auto& t = totals[p];
    if (t.spans == 0) {
      continue;
    }
    std::snprintf(item, sizeof(item),
                  "%s\"%s\":{\"spans\":%llu,\"ms\":%.3f,\"pool_hits\":%llu,"
                  "\"pool_misses\":%llu,\"disk_reads\":%llu}",
                  first ? "" : ",", obs::PhaseName(static_cast<obs::Phase>(p)),
                  static_cast<unsigned long long>(t.spans),
                  static_cast<double>(t.exclusive_ns) / 1e6,
                  static_cast<unsigned long long>(t.io.pool_hits),
                  static_cast<unsigned long long>(t.io.pool_misses),
                  static_cast<unsigned long long>(t.io.disk_reads));
    buf += item;
    first = false;
  }
  buf += "}}";
  std::printf("JSON %s\n", buf.c_str());
  JsonRecords().push_back(buf);
}

void RunSeries(const char* workload, Database* db, const Workload& wl,
               const std::vector<size_t>& thread_counts, size_t repeat,
               bool div) {
  TablePrinter table({"threads", "queries", "wall ms", "qps", "avg ms",
                      "p50 ms", "p95 ms", "p99 ms", "speedup"});
  double base_qps = 0.0;
  for (size_t threads : thread_counts) {
    db->ResetCounters();
    const ThroughputMetrics m =
        div ? RunDivWorkloadConcurrent(db, wl, /*k=*/10, /*lambda=*/0.8,
                                       /*use_com=*/true, threads, repeat)
            : RunSkWorkloadConcurrent(db, wl, threads, repeat);
    if (base_qps == 0.0) {
      base_qps = m.qps;
    }
    const double speedup = base_qps > 0.0 ? m.qps / base_qps : 0.0;
    table.AddRow({std::to_string(m.num_threads), std::to_string(m.queries),
                  TablePrinter::Fmt(m.wall_millis, 1),
                  TablePrinter::Fmt(m.qps, 1), TablePrinter::Fmt(m.avg_millis, 3),
                  TablePrinter::Fmt(m.p50_millis, 3),
                  TablePrinter::Fmt(m.p95_millis, 3),
                  TablePrinter::Fmt(m.p99_millis, 3),
                  TablePrinter::Fmt(speedup, 2)});
    EmitJson(workload, m, speedup);
  }
  std::printf("\n[%s]\n", workload);
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("Concurrent query throughput vs thread count",
              "no paper figure — production-scaling experiment");
  BenchBackend backend(argc, argv);
  g_backend_name = backend.name();
  std::printf("storage backend: %s\n", g_backend_name);
  const size_t num_queries = QueriesFromEnv(200);
  const std::vector<size_t> thread_counts = ThreadCountsFromEnv();
  // Every thread count processes the same total batch, so wall time (and
  // qps) are directly comparable across rows.
  const size_t repeat = 4;

  Database db(Scaled(PresetNA()), backend.options());
  IndexOptions opts;
  opts.kind = IndexKind::kSIF;
  db.BuildIndex(opts);
  db.PrepareForQueries();

  WorkloadConfig wc;
  wc.num_queries = num_queries;
  wc.seed = 4242;
  const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);

  RunSeries("sk", &db, wl, thread_counts, repeat, /*div=*/false);
  EmitPhaseProfile("sk", &db, wl, /*div=*/false);
  RunSeries("div-com", &db, wl, thread_counts, repeat, /*div=*/true);
  EmitPhaseProfile("div-com", &db, wl, /*div=*/true);

  WriteJsonArrayFile("BENCH_throughput.json", JsonRecords());

  std::printf(
      "\nExpected: qps grows with threads (misses overlap their simulated\n"
      "I/O latency outside the pool latch); p99 grows more slowly than the\n"
      "thread count since queries are independent reads.\n");
  return 0;
}
