// Concurrent query throughput: many SK / diversified searches sharing one
// disk-resident SIF index and one LRU buffer pool, executed by the
// QueryExecutor thread pool at 1/2/4/8 threads. The paper's experiments
// (§5) are sequential; this bench measures what the latched storage layer
// adds on top — aggregate queries/sec and tail latency under concurrency.
//
// Knobs: DSKS_BENCH_SCALE, DSKS_BENCH_QUERIES (as everywhere),
// DSKS_BENCH_THREADS (comma list, default "1,2,4,8"),
// DSKS_IO_DELAY_US (per-read simulated latency, default 50),
// DSKS_BENCH_SAMPLE (trace 1-in-N queries on the timed path, default 0 =
// off so the perf baseline stays comparable; the check.sh overhead gate
// compares a sampled run against the unsampled smoke),
// DSKS_BENCH_STATS_PORT (serve /metrics, /varz, /tracez on that port
// while the bench runs; 0 picks an ephemeral port, printed as a "STATS
// http://..." line), DSKS_BENCH_STATS_LINGER_MS (keep serving that long
// after the benches finish, so scrapers never race bench exit).
//
// Besides the table, every measurement is emitted as one JSON line
// (prefix "JSON ") for scripted consumption. The measured series run
// untraced unless DSKS_BENCH_SAMPLE is set (each record says so via
// "sample_rate"/"sampled_queries"); a separate single-threaded traced
// pass per workload emits a "phase_profile" record attributing time and
// I/O to the query phases.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/macros.h"
#include "harness/query_executor.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/stats_server.h"
#include "obs/trace.h"

using namespace dsks;         // NOLINT
using namespace dsks::bench;  // NOLINT

namespace {

std::vector<size_t> ThreadCountsFromEnv() {
  const char* s = std::getenv("DSKS_BENCH_THREADS");
  if (s == nullptr) {
    return {1, 2, 4, 8};
  }
  std::vector<size_t> counts;
  const std::string csv = s;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) {
      comma = csv.size();
    }
    const size_t n =
        static_cast<size_t>(std::atoll(csv.substr(pos, comma - pos).c_str()));
    if (n > 0) {
      counts.push_back(n);
    }
    pos = comma + 1;
  }
  return counts.empty() ? std::vector<size_t>{1} : counts;
}

/// Accumulates every measurement for the BENCH_throughput.json artifact.
std::vector<std::string>& JsonRecords() {
  static std::vector<std::string> records;
  return records;
}

/// Set once in main from BenchBackend; stamped into every JSON record so
/// sim and file numbers can never be compared silently.
const char* g_backend_name = "sim";

/// The I/O regime ("sync"/"async") and the engine that actually served it
/// ("sync"/"worker-pool"/"io_uring"), same contract as the backend name:
/// every record carries them, and perf_gate.py refuses to compare numbers
/// across regimes. The engine can differ from the requested regime only
/// by fallback (async on a kernel without io_uring → "worker-pool").
const char* g_io_name = "sync";
const char* g_io_engine = "sync";

/// Sampled-tracing policy for the measured series, from DSKS_BENCH_SAMPLE.
/// Off by default: a sampled run is a different experiment than the perf
/// baseline, and every record says which one it was.
obs::TraceSamplerConfig g_sampling;

/// Sink for the sampled queries' summaries; also what /tracez serves when
/// the stats server is up. Null when neither is enabled.
obs::FlightRecorder* g_recorder = nullptr;

/// Live stats endpoint over GlobalMetrics + the flight recorder, gated on
/// DSKS_BENCH_STATS_PORT. Construction binds the db's pool/disk counters
/// into the registry and prints one discoverable "STATS http://..." line;
/// destruction optionally lingers (DSKS_BENCH_STATS_LINGER_MS) so external
/// scrapers started against that line never race bench exit.
class ScopedStatsServer {
 public:
  ScopedStatsServer(Database* db, const obs::FlightRecorder* recorder) {
    const char* port_env = std::getenv("DSKS_BENCH_STATS_PORT");
    if (port_env == nullptr) {
      return;
    }
    db_ = db;
    db_->BindMetrics(&obs::GlobalMetrics());
    server_ = std::make_unique<obs::StatsServer>(&obs::GlobalMetrics(),
                                                 recorder);
    const Status started =
        server_->Start(static_cast<uint16_t>(std::atoi(port_env)));
    if (!started.ok()) {
      std::fprintf(stderr, "stats server failed to start: %s\n",
                   started.message().c_str());
      server_.reset();
      return;
    }
    std::printf("STATS http://127.0.0.1:%u\n",
                static_cast<unsigned>(server_->port()));
    std::fflush(stdout);
  }

  ~ScopedStatsServer() {
    if (server_ != nullptr) {
      // Flush before the linger opens: with stdout redirected to a file the
      // bench's final lines are fully buffered, and scrapers keyed off that
      // file must see them while the server is still answering.
      std::fflush(stdout);
      if (const char* linger = std::getenv("DSKS_BENCH_STATS_LINGER_MS");
          linger != nullptr && std::atoi(linger) > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::atoi(linger)));
      }
      server_->Stop();
    }
    if (db_ != nullptr) {
      db_->UnbindMetrics(&obs::GlobalMetrics());
    }
  }

 private:
  Database* db_ = nullptr;
  std::unique_ptr<obs::StatsServer> server_;
};

void EmitJson(const char* workload, const ThroughputMetrics& m,
              double speedup) {
  // hist_* come from the merged per-worker histograms (bucketed, so upper
  // bounds); the exact sample percentiles stay the primary numbers.
  // "cold":0 marks the warm-cache regime — the perf gate refuses to
  // compare cold and warm records (different experiments).
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\"bench\":\"throughput\",\"backend\":\"%s\",\"io\":\"%s\","
      "\"io_engine\":\"%s\",\"workload\":\"%s\","
      "\"cold\":0,\"prefetch\":1,\"threads\":%zu,"
      "\"queries\":%zu,\"wall_ms\":%.2f,\"qps\":%.1f,\"avg_ms\":%.3f,"
      "\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f,\"speedup\":%.2f,"
      "\"errors\":%llu,\"error_rate\":%.6f,"
      "\"hist_count\":%llu,\"hist_p50_ms\":%.3f,\"hist_p99_ms\":%.3f,"
      "\"sample_rate\":%u,\"sampled_queries\":%llu}",
      g_backend_name, g_io_name, g_io_engine, workload, m.num_threads,
      m.queries, m.wall_millis, m.qps,
      m.avg_millis,
      m.p50_millis, m.p95_millis, m.p99_millis, speedup,
      static_cast<unsigned long long>(m.errors), m.error_rate,
      static_cast<unsigned long long>(m.histogram.count),
      m.histogram.Percentile(50), m.histogram.Percentile(99), m.sample_rate,
      static_cast<unsigned long long>(m.sampled));
  std::printf("JSON %s\n", buf);
  JsonRecords().push_back(buf);
}

/// Cold-cache A/B: single-threaded, the buffer pool cleared before every
/// query so each one pays its full miss path — the regime where batched
/// misses and readahead show up (a warm pool hides them). Runs the
/// workload twice, prefetch off then on; the off run is the baseline the
/// on run's pool_misses reduction is judged against (EXPERIMENTS.md).
void RunColdSeries(const char* workload, Database* db, const Workload& wl,
                   bool div) {
  // Sleeping delay, not the sequential harness's busy-wait: the async
  // engine always sleeps (a spinning "device" thread would steal the
  // issuer's core), so the sync side of a cold A/B must pay the same
  // scheduler wakeup costs or the two regimes simulate different devices.
  ScopedIoDelay delay(db, /*yielding=*/true);
  TablePrinter table({"prefetch", "queries", "wall ms", "qps", "avg ms",
                      "p95 ms", "misses", "reads", "pf issued", "pf hits",
                      "pf wasted", "pf dropped"});
  QueryContext ctx;
  uint64_t baseline_misses = 0;
  for (int mode = 0; mode < 2; ++mode) {
    const bool prefetch_on = mode == 1;
    db->SetPrefetchEnabled(prefetch_on);
    db->ResetCounters();
    obs::Histogram hist;
    std::vector<double> lat;
    lat.reserve(wl.queries.size());
    const auto batch_start = std::chrono::steady_clock::now();
    for (const WorkloadQuery& wq : wl.queries) {
      const Status cleared = db->pool()->Clear();
      DSKS_CHECK_MSG(cleared.ok(), "cold-cache clear on a faulty disk");
      const auto q_start = std::chrono::steady_clock::now();
      if (div) {
        DivQuery dq;
        dq.sk = wq.sk;
        dq.k = 10;
        dq.lambda = 0.8;
        db->RunDivQuery(dq, wq.edge, /*use_com=*/true, &ctx);
      } else {
        db->RunSkQuery(wq.sk, wq.edge, &ctx);
      }
      const double ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - q_start)
              .count();
      lat.push_back(ms);
      hist.Record(ms);
    }
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - batch_start)
                               .count();
    std::sort(lat.begin(), lat.end());
    auto pct = [&lat](double p) {
      if (lat.empty()) {
        return 0.0;
      }
      const size_t i = static_cast<size_t>(p * (lat.size() - 1) / 100.0);
      return lat[i];
    };
    double sum = 0.0;
    for (double v : lat) {
      sum += v;
    }
    const size_t n = lat.size();
    const double qps = wall_ms > 0.0 ? 1000.0 * n / wall_ms : 0.0;
    const BufferPoolStatsSnapshot pool = db->pool()->stats_snapshot();
    const uint64_t reads = db->disk()->stats_snapshot().reads;
    if (!prefetch_on) {
      baseline_misses = pool.misses;
    }
    const obs::HistogramSnapshot hs = hist.Snapshot();
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "{\"bench\":\"throughput\",\"backend\":\"%s\",\"io\":\"%s\","
        "\"io_engine\":\"%s\",\"workload\":\"%s\","
        "\"cold\":1,\"prefetch\":%d,\"threads\":1,"
        "\"queries\":%zu,\"wall_ms\":%.2f,\"qps\":%.1f,\"avg_ms\":%.3f,"
        "\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f,\"speedup\":1.00,"
        "\"errors\":0,\"error_rate\":0,"
        "\"hist_count\":%llu,\"hist_p50_ms\":%.3f,\"hist_p99_ms\":%.3f,"
        "\"sample_rate\":0,\"sampled_queries\":0,"
        "\"pool_misses\":%llu,\"disk_reads\":%llu,"
        "\"prefetch_issued\":%llu,\"prefetch_hits\":%llu,"
        "\"prefetch_wasted\":%llu,\"prefetch_dropped\":%llu}",
        g_backend_name, g_io_name, g_io_engine, workload, prefetch_on ? 1 : 0,
        n, wall_ms, qps,
        n > 0 ? sum / n : 0.0, pct(50), pct(95), pct(99),
        static_cast<unsigned long long>(hs.count), hs.Percentile(50),
        hs.Percentile(99), static_cast<unsigned long long>(pool.misses),
        static_cast<unsigned long long>(reads),
        static_cast<unsigned long long>(pool.prefetch_issued),
        static_cast<unsigned long long>(pool.prefetch_hits),
        static_cast<unsigned long long>(pool.prefetch_wasted),
        static_cast<unsigned long long>(pool.prefetch_dropped));
    std::printf("JSON %s\n", buf);
    JsonRecords().push_back(buf);
    table.AddRow({prefetch_on ? "on" : "off", std::to_string(n),
                  TablePrinter::Fmt(wall_ms, 1), TablePrinter::Fmt(qps, 1),
                  TablePrinter::Fmt(n > 0 ? sum / n : 0.0, 3),
                  TablePrinter::Fmt(pct(95), 3), std::to_string(pool.misses),
                  std::to_string(reads), std::to_string(pool.prefetch_issued),
                  std::to_string(pool.prefetch_hits),
                  std::to_string(pool.prefetch_wasted),
                  std::to_string(pool.prefetch_dropped)});
    if (prefetch_on && baseline_misses > 0) {
      std::printf("[%s cold] blocking misses: %llu -> %llu (%.1f%% fewer)\n",
                  workload,
                  static_cast<unsigned long long>(baseline_misses),
                  static_cast<unsigned long long>(pool.misses),
                  100.0 * (1.0 - static_cast<double>(pool.misses) /
                                     static_cast<double>(baseline_misses)));
    }
  }
  db->SetPrefetchEnabled(true);
  std::printf("\n[%s cold-cache A/B]\n", workload);
  table.Print();
}

void EmitPhaseProfile(const char* workload, Database* db, const Workload& wl,
                      bool div) {
  // Single-threaded so the counter deltas are exact (no other query's
  // traffic lands inside a span); spin-wait delay like the sequential
  // harness so phase times include the simulated I/O cost.
  ScopedIoDelay delay(db);
  db->ResetCounters();
  obs::QueryTrace trace;
  trace.BindIoSources(&db->pool()->stats(), &db->disk()->stats());
  QueryContext ctx;
  ctx.trace = &trace;
  const size_t n = std::min<size_t>(wl.queries.size(), 32);
  for (size_t i = 0; i < n; ++i) {
    const WorkloadQuery& wq = wl.queries[i];
    if (div) {
      DivQuery dq;
      dq.sk = wq.sk;
      dq.k = 10;
      dq.lambda = 0.8;
      db->RunDivQuery(dq, wq.edge, /*use_com=*/true, &ctx);
    } else {
      db->RunSkQuery(wq.sk, wq.edge, &ctx);
    }
  }
  const auto totals = trace.AggregateByPhase();
  std::string buf;
  char item[256];
  std::snprintf(item, sizeof(item),
                "{\"bench\":\"throughput\",\"backend\":\"%s\",\"io\":\"%s\","
                "\"io_engine\":\"%s\","
                "\"workload\":\"%s\",\"queries\":%zu,\"phase_profile\":{",
                g_backend_name, g_io_name, g_io_engine, workload, n);
  buf += item;
  bool first = true;
  for (size_t p = 0; p < obs::kNumPhases; ++p) {
    const auto& t = totals[p];
    if (t.spans == 0) {
      continue;
    }
    std::snprintf(item, sizeof(item),
                  "%s\"%s\":{\"spans\":%llu,\"ms\":%.3f,\"pool_hits\":%llu,"
                  "\"pool_misses\":%llu,\"disk_reads\":%llu,"
                  "\"prefetched_pages\":%llu}",
                  first ? "" : ",", obs::PhaseName(static_cast<obs::Phase>(p)),
                  static_cast<unsigned long long>(t.spans),
                  static_cast<double>(t.exclusive_ns) / 1e6,
                  static_cast<unsigned long long>(t.io.pool_hits),
                  static_cast<unsigned long long>(t.io.pool_misses),
                  static_cast<unsigned long long>(t.io.disk_reads),
                  static_cast<unsigned long long>(t.io.prefetched_pages));
    buf += item;
    first = false;
  }
  buf += "}}";
  std::printf("JSON %s\n", buf.c_str());
  JsonRecords().push_back(buf);
}

void RunSeries(const char* workload, Database* db, const Workload& wl,
               const std::vector<size_t>& thread_counts, size_t repeat,
               bool div) {
  TablePrinter table({"threads", "queries", "wall ms", "qps", "avg ms",
                      "p50 ms", "p95 ms", "p99 ms", "speedup"});
  double base_qps = 0.0;
  for (size_t threads : thread_counts) {
    db->ResetCounters();
    const ThroughputMetrics m =
        div ? RunDivWorkloadConcurrent(db, wl, /*k=*/10, /*lambda=*/0.8,
                                       /*use_com=*/true, threads, repeat,
                                       g_sampling, g_recorder)
            : RunSkWorkloadConcurrent(db, wl, threads, repeat, g_sampling,
                                      g_recorder);
    if (base_qps == 0.0) {
      base_qps = m.qps;
    }
    const double speedup = base_qps > 0.0 ? m.qps / base_qps : 0.0;
    table.AddRow({std::to_string(m.num_threads), std::to_string(m.queries),
                  TablePrinter::Fmt(m.wall_millis, 1),
                  TablePrinter::Fmt(m.qps, 1), TablePrinter::Fmt(m.avg_millis, 3),
                  TablePrinter::Fmt(m.p50_millis, 3),
                  TablePrinter::Fmt(m.p95_millis, 3),
                  TablePrinter::Fmt(m.p99_millis, 3),
                  TablePrinter::Fmt(speedup, 2)});
    EmitJson(workload, m, speedup);
  }
  std::printf("\n[%s]\n", workload);
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  bool cold = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cold") == 0) {
      cold = true;
    }
  }
  if (const char* env = std::getenv("DSKS_BENCH_COLD");
      env != nullptr && env[0] == '1') {
    cold = true;
  }

  PrintHeader(cold ? "Cold-cache query cost, prefetch off vs on"
                   : "Concurrent query throughput vs thread count",
              "no paper figure — production-scaling experiment");
  BenchBackend backend(argc, argv);
  g_backend_name = backend.name();
  g_io_name = backend.io_name();
  std::printf("storage backend: %s%s\n", g_backend_name,
              cold ? " (cold cache)" : "");
  const size_t num_queries = QueriesFromEnv(200);
  const std::vector<size_t> thread_counts = ThreadCountsFromEnv();
  // Every thread count processes the same total batch, so wall time (and
  // qps) are directly comparable across rows.
  const size_t repeat = 4;

  if (const char* env = std::getenv("DSKS_BENCH_SAMPLE");
      env != nullptr && std::atoi(env) > 0) {
    g_sampling.sample_every = static_cast<uint32_t>(std::atoi(env));
    g_sampling.seed = 42;
    std::printf("sampled tracing: 1 in %u\n", g_sampling.sample_every);
  }

  Database db(Scaled(PresetNA()), backend.options());
  g_io_engine = db.disk()->io_engine_name();
  std::printf("io regime: %s (engine %s, depth %zu)\n", g_io_name,
              g_io_engine, db.disk()->io_depth());
  IndexOptions opts;
  opts.kind = IndexKind::kSIF;
  db.BuildIndex(opts);
  db.PrepareForQueries();

  // The recorder exists whenever something consumes it: the sampling
  // policy files summaries into it, and /tracez serves it.
  obs::FlightRecorder recorder;
  if (g_sampling.sample_every > 0 ||
      std::getenv("DSKS_BENCH_STATS_PORT") != nullptr) {
    recorder.set_occupancy_gauge(
        &obs::GlobalMetrics().gauge("dsks.flight_recorder.entries"));
    g_recorder = &recorder;
  }
  ScopedStatsServer stats(&db, g_recorder);

  WorkloadConfig wc;
  wc.num_queries = num_queries;
  wc.seed = 4242;
  const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);

  if (cold) {
    RunColdSeries("sk", &db, wl, /*div=*/false);
    RunColdSeries("div-com", &db, wl, /*div=*/true);
    EmitPhaseProfile("sk", &db, wl, /*div=*/false);
    WriteJsonArrayFile("BENCH_throughput.json", JsonRecords());
    std::printf(
        "\nExpected: with prefetch on, pool_misses (blocking miss-path\n"
        "reads) drop — readahead turns demand misses into prefetch hits —\n"
        "while results stay bit-identical (prefetch_test asserts this).\n");
    return 0;
  }

  RunSeries("sk", &db, wl, thread_counts, repeat, /*div=*/false);
  EmitPhaseProfile("sk", &db, wl, /*div=*/false);
  RunSeries("div-com", &db, wl, thread_counts, repeat, /*div=*/true);
  EmitPhaseProfile("div-com", &db, wl, /*div=*/true);

  WriteJsonArrayFile("BENCH_throughput.json", JsonRecords());

  std::printf(
      "\nExpected: qps grows with threads (misses overlap their simulated\n"
      "I/O latency outside the pool latch); p99 grows more slowly than the\n"
      "thread count since queries are independent reads.\n");
  return 0;
}
