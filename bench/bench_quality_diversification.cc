// Quantifies the motivation of §1/Fig. 1, which the paper argues but
// never measures: how much more spatially spread is the diversified
// result than the plain k-nearest result, and what does it cost in
// closeness? For each dataset we run the same workload twice — λ = 1
// (pure relevance: the k nearest matching objects) and the default
// λ = 0.8 — and compare the average pairwise network distance within the
// answer (the "post-dinner options" spread) against the average distance
// to the query.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/distance_oracle.h"

using namespace dsks;        // NOLINT
using namespace dsks::bench; // NOLINT

namespace {

struct Quality {
  double avg_query_dist = 0.0;  // closeness (lower = closer)
  double avg_pair_dist = 0.0;   // spread   (higher = more diverse)
  double avg_fs = 0.0;
  size_t queries = 0;
};

}  // namespace

int main() {
  PrintHeader("Quality: diversified vs nearest-k answers",
              "the Fig. 1 motivation, quantified");
  const size_t num_queries = QueriesFromEnv(25);
  const size_t k = 10;

  TablePrinter table({"dataset", "lambda", "avg dist to q",
                      "avg pairwise dist", "avg f(S)"});
  for (const DatasetConfig& preset : AllPresets()) {
    Database db(Scaled(preset));
    IndexOptions opts;
    opts.kind = IndexKind::kSIF;
    db.BuildIndex(opts);
    db.PrepareForQueries();
    WorkloadConfig wc;
    wc.num_queries = num_queries;
    wc.seed = 31337;
    const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);

    for (double lambda : {1.0, 0.8, 0.5}) {
      Quality q;
      for (const WorkloadQuery& wq : wl.queries) {
        DivQuery dq;
        dq.sk = wq.sk;
        dq.k = k;
        dq.lambda = lambda;
        const DivSearchOutput out = db.RunDivQuery(dq, wq.edge, true);
        if (out.selected.size() < 2) {
          continue;
        }
        PairwiseDistanceOracle oracle(&db.ccam_graph(),
                                      2.0 * dq.sk.delta_max);
        double qd = 0.0;
        double pd = 0.0;
        size_t pairs = 0;
        for (size_t i = 0; i < out.selected.size(); ++i) {
          qd += out.selected[i].dist;
          for (size_t j = i + 1; j < out.selected.size(); ++j) {
            pd += oracle.Distance(out.selected[i], out.selected[j]);
            ++pairs;
          }
        }
        q.avg_query_dist += qd / static_cast<double>(out.selected.size());
        q.avg_pair_dist += pd / static_cast<double>(pairs);
        q.avg_fs += out.objective;
        ++q.queries;
      }
      if (q.queries == 0) {
        continue;
      }
      const auto n = static_cast<double>(q.queries);
      table.AddRow({preset.name, TablePrinter::Fmt(lambda, 1),
                    TablePrinter::Fmt(q.avg_query_dist / n, 0),
                    TablePrinter::Fmt(q.avg_pair_dist / n, 0),
                    TablePrinter::Fmt(q.avg_fs / n, 4)});
    }
  }
  table.Print();
  std::printf(
      "\nExpected: lowering lambda trades a small increase in distance to\n"
      "the query for a growing pairwise spread of the answer set — the\n"
      "Fig. 1 trade ({p1,p4} over {p1,p2}).\n");
  return 0;
}
