// Reproduces Fig. 16: diversified search (SEQ vs COM) on the SYN dataset
// while varying the synthetic knobs — (a) Zipf skew z, (b) number of
// objects n_o, (c) keywords per object n_k, (d) vocabulary size n_v.
// Expected shapes (§5.2): both algorithms degrade with z, n_o and n_k
// (more matching objects) and improve with n_v (fewer matches); COM is
// consistently faster and more scalable than SEQ.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_common.h"

using namespace dsks;        // NOLINT
using namespace dsks::bench; // NOLINT

namespace {

void RunSweep(const char* title, const char* knob,
              const std::vector<double>& values,
              const std::function<DatasetConfig(double)>& make_config,
              size_t num_queries) {
  TablePrinter table({knob, "SEQ ms", "COM ms", "SEQ cands", "COM cands"});
  for (double v : values) {
    Database db(make_config(v));
    IndexOptions opts;
    opts.kind = IndexKind::kSIF;
    db.BuildIndex(opts);
    db.PrepareForQueries();
    WorkloadConfig wc;
    wc.num_queries = num_queries;
    wc.seed = 1600;
    const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);
    const DivWorkloadMetrics seq = RunDivWorkload(&db, wl, 10, 0.8, false);
    const DivWorkloadMetrics com = RunDivWorkload(&db, wl, 10, 0.8, true);
    table.AddRow({TablePrinter::Fmt(v, v < 10 ? 1 : 0),
                  TablePrinter::Fmt(seq.avg_millis, 2),
                  TablePrinter::Fmt(com.avg_millis, 2),
                  TablePrinter::Fmt(seq.avg_candidates, 1),
                  TablePrinter::Fmt(com.avg_candidates, 1)});
  }
  std::printf("\n%s\n", title);
  table.Print();
}

}  // namespace

int main() {
  PrintHeader("Fig. 16: diversified search on synthetic data (SYN)",
              "Fig. 16(a)-(d)");
  const size_t num_queries = QueriesFromEnv(25);
  const DatasetConfig base = Scaled(PresetSYN());

  // (a) term-frequency skew z (paper: 0.9 - 1.3, default 1.1).
  RunSweep("(a) effect of the term frequency skewness (z)", "z",
           {0.9, 1.0, 1.1, 1.2, 1.3},
           [&base](double z) {
             DatasetConfig c = base;
             c.objects.zipf_z = z;
             return c;
           },
           num_queries);

  // (b) number of objects (paper: 0.5M - 2M around the 1M default; our
  // preset scales that to 20k - 80k around 40k).
  RunSweep("(b) effect of the number of objects (n_o)", "n_o",
           {0.5 * base.objects.num_objects,
            1.0 * base.objects.num_objects,
            1.5 * base.objects.num_objects,
            2.0 * base.objects.num_objects},
           [&base](double n) {
             DatasetConfig c = base;
             c.objects.num_objects = static_cast<size_t>(n);
             return c;
           },
           num_queries);

  // (c) keywords per object (paper default 15).
  RunSweep("(c) effect of the keywords per object (n_k)", "n_k",
           {5, 10, 15, 20},
           [&base](double nk) {
             DatasetConfig c = base;
             c.objects.keywords_per_object = static_cast<size_t>(nk);
             return c;
           },
           num_queries);

  // (d) vocabulary size (paper: 20k - 100k scaled to 800 - 4000).
  RunSweep("(d) effect of the vocabulary size (n_v)", "n_v",
           {0.2 * base.objects.vocab_size, 0.5 * base.objects.vocab_size,
            0.75 * base.objects.vocab_size,
            1.0 * base.objects.vocab_size},
           [&base](double nv) {
             DatasetConfig c = base;
             c.objects.vocab_size = static_cast<size_t>(nv);
             return c;
           },
           num_queries);
  return 0;
}
