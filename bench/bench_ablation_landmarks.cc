// Ablation for the paper's no-precomputation stance (§3.2: INE "does not
// rely on specific restrictions or pre-computation ... of the road
// networks"): what would an ALT landmark index buy for the pairwise
// distance computations of the diversified search, and what does it cost?
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "graph/landmarks.h"

using namespace dsks;        // NOLINT
using namespace dsks::bench; // NOLINT

int main() {
  PrintHeader("Ablation: ALT landmarks vs plain Dijkstra distances",
              "the §3.2 no-precomputation design choice");
  const DatasetConfig cfg = Scaled(PresetNA());
  auto net = GenerateRoadNetwork(cfg.network);
  auto objects = GenerateObjects(*net, cfg.objects);
  Random rng(4242);

  // Random object pairs within a diversified search's typical spread.
  std::vector<std::pair<NetworkLocation, NetworkLocation>> pairs;
  for (int i = 0; i < 200; ++i) {
    const auto& a = objects->object(
        static_cast<ObjectId>(rng.Uniform(objects->size())));
    const auto& b = objects->object(
        static_cast<ObjectId>(rng.Uniform(objects->size())));
    pairs.emplace_back(NetworkLocation{a.edge, a.offset},
                       NetworkLocation{b.edge, b.offset});
  }

  TablePrinter table({"landmarks", "build ms", "table MB",
                      "avg A* settled", "query ms/pair"});
  for (size_t landmarks : {2, 4, 8, 16}) {
    Timer build;
    LandmarkIndex index(net.get(), landmarks);
    const double build_ms = build.ElapsedMillis();
    uint64_t settled_total = 0;
    Timer query;
    for (const auto& [a, b] : pairs) {
      uint64_t settled = 0;
      index.Distance(a, b, &settled);
      settled_total += settled;
    }
    const double per_pair =
        query.ElapsedMillis() / static_cast<double>(pairs.size());
    table.AddRow({std::to_string(landmarks), TablePrinter::Fmt(build_ms, 0),
                  TablePrinter::Fmt(
                      static_cast<double>(index.SizeBytes()) / 1048576.0, 1),
                  TablePrinter::Fmt(static_cast<double>(settled_total) /
                                        static_cast<double>(pairs.size()),
                                    0),
                  TablePrinter::Fmt(per_pair, 3)});
  }
  table.Print();

  // The no-precomputation reference: one bounded Dijkstra per pair.
  Timer ref;
  uint64_t ref_settled = 0;
  for (const auto& [a, b] : pairs) {
    const auto field = BoundedDijkstraFromLocation(*net, a, kInfDistance);
    ref_settled += field.size();
    // (distance composition omitted; the expansion dominates)
  }
  std::printf(
      "\nno-precomputation reference (full Dijkstra per source): "
      "%.3f ms/pair, %.0f settled nodes/pair, 0 MB of tables\n",
      ref.ElapsedMillis() / static_cast<double>(pairs.size()),
      static_cast<double>(ref_settled) / static_cast<double>(pairs.size()));
  std::printf(
      "Landmarks buy goal-directed point-to-point queries at the price of\n"
      "an O(L*V) table tied to one weight function — the trade-off the\n"
      "paper's INE design avoids.\n");
  return 0;
}
