// Reproduces Fig. 9: space cost-effectiveness of SIF-P vs SIF-G on SF.
// For each max-cut budget, SIF-P is built and its false hits measured;
// SIF-G is evaluated twice — granted the *same* in-memory space as SIF-P's
// summaries, and granted ~10x that space (the paper's setup) — by picking
// the number x of frequent terms whose pairwise edge lists fit the budget.
// Expected shape: SIF-P's false hits drop steeply with the cut budget and
// dominate SIF-G at equal space; SIF-G needs an order of magnitude more
// space to compete.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "index/sif_group.h"
#include "index/sif_partitioned.h"

using namespace dsks;        // NOLINT
using namespace dsks::bench; // NOLINT

namespace {

struct SizePoint {
  size_t x;
  uint64_t bytes;
};

/// Largest tabulated x whose pair lists stay within `budget`.
size_t PickFrequentTerms(const std::vector<SizePoint>& table,
                         uint64_t budget) {
  size_t best = 2;
  for (const SizePoint& p : table) {
    if (p.bytes <= budget) {
      best = p.x;
    }
  }
  return best;
}

}  // namespace

int main() {
  PrintHeader("Fig. 9: space cost-effectiveness (SIF-P vs SIF-G)",
              "Fig. 9, dataset SF");
  const size_t num_queries = QueriesFromEnv(30);

  Database db(Scaled(PresetSF()));
  const size_t vocab = db.config().objects.vocab_size;
  WorkloadConfig wc;
  wc.num_queries = num_queries;
  wc.seed = 9900;
  const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);

  // Pre-tabulate SIF-G pair-list sizes for candidate x values.
  std::vector<SizePoint> size_table;
  for (size_t x = 4; x <= std::min<size_t>(1024, vocab / 2); x *= 2) {
    size_table.push_back(
        {x, SifGroupIndex::EstimatePairListBytes(db.objects(), vocab, x)});
  }

  TablePrinter table({"max cuts", "SIF-P summary KB", "SIF-P false hits",
                      "SIF-G@1x KB", "SIF-G@1x false hits", "SIF-G@10x KB",
                      "SIF-G@10x false hits"});

  for (size_t cuts : {2, 4, 8, 16, 32}) {
    IndexOptions opts;
    opts.kind = IndexKind::kSIFP;
    opts.sifp.max_cuts = cuts;
    // A bigger cut budget also lets more edges be partitioned — the
    // paper's x-axis is "available index space".
    opts.sifp.heavy_edge_fraction = std::min(1.0, 0.05 * cuts);
    db.BuildIndex(opts);
    db.PrepareForQueries();
    const auto* sifp = static_cast<const SifIndex*>(db.index());
    const uint64_t summary = sifp->InMemorySummaryBytes();
    const SkWorkloadMetrics mp = RunSkWorkload(&db, wl);

    double g_fh[2];
    uint64_t g_kb[2];
    const uint64_t budgets[2] = {summary, 10 * summary};
    for (int b = 0; b < 2; ++b) {
      IndexOptions gopts;
      gopts.kind = IndexKind::kSIFG;
      gopts.sifg_frequent_terms = PickFrequentTerms(size_table, budgets[b]);
      db.BuildIndex(gopts);
      db.PrepareForQueries();
      const auto* sifg = static_cast<const SifGroupIndex*>(db.index());
      g_kb[b] = sifg->pair_list_bytes() / 1024;
      g_fh[b] = RunSkWorkload(&db, wl).avg_false_hit_objects;
    }

    table.AddRow({std::to_string(cuts),
                  TablePrinter::Fmt(static_cast<double>(summary) / 1024.0, 0),
                  TablePrinter::Fmt(mp.avg_false_hit_objects, 1),
                  std::to_string(g_kb[0]), TablePrinter::Fmt(g_fh[0], 1),
                  std::to_string(g_kb[1]), TablePrinter::Fmt(g_fh[1], 1)});
  }
  std::printf("\navg # false-hit objects per query vs space budget\n");
  table.Print();
  return 0;
}
