// Reproduces Fig. 13: diversified search (SEQ vs COM) on NA as the search
// range δmax grows. Expected shape: COM's advantage widens with the range
// because SEQ must retrieve and pairwise-evaluate every candidate in the
// region while COM's diversity pruning terminates early.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace dsks;        // NOLINT
using namespace dsks::bench; // NOLINT

int main() {
  PrintHeader("Fig. 13: diversified search vs search range (delta_max)",
              "Fig. 13, dataset NA");
  const size_t num_queries = QueriesFromEnv(30);

  Database db(Scaled(PresetNA()));
  IndexOptions opts;
  opts.kind = IndexKind::kSIF;
  db.BuildIndex(opts);
  db.PrepareForQueries();

  TablePrinter table({"delta_max", "SEQ ms", "COM ms", "SEQ cands",
                      "COM cands"});
  for (double r : {500.0, 1000.0, 1500.0, 2000.0, 2500.0}) {
    WorkloadConfig wc;
    wc.num_queries = num_queries;
    wc.delta_max_override = r;
    wc.seed = 1300;
    const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);
    const DivWorkloadMetrics seq = RunDivWorkload(&db, wl, 10, 0.8, false);
    const DivWorkloadMetrics com = RunDivWorkload(&db, wl, 10, 0.8, true);
    table.AddRow({TablePrinter::Fmt(r, 0), TablePrinter::Fmt(seq.avg_millis, 2),
                  TablePrinter::Fmt(com.avg_millis, 2),
                  TablePrinter::Fmt(seq.avg_candidates, 1),
                  TablePrinter::Fmt(com.avg_candidates, 1)});
  }
  std::printf("\navg response time and candidates per query\n");
  table.Print();
  return 0;
}
