// Reproduces Fig. 10: sensitivity of SIF-P to the query log used for
// partition training, on NA and TW. Expected ordering (§5.1):
// SIF-P-Real <= SIF-P-Freq < SIF-P-Rand < SIF.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "index/query_log.h"

using namespace dsks;        // NOLINT
using namespace dsks::bench; // NOLINT

int main() {
  PrintHeader("Fig. 10: effect of the partition-training query log",
              "Fig. 10, datasets NA and TW");
  const size_t num_queries = QueriesFromEnv(60);

  TablePrinter time_table(
      {"dataset", "SIF", "SIF-P-Real", "SIF-P-Freq", "SIF-P-Rand"});
  TablePrinter fh_table(
      {"dataset", "SIF", "SIF-P-Real", "SIF-P-Freq", "SIF-P-Rand"});

  for (const DatasetConfig& preset : {PresetNA(), PresetTW()}) {
    Database db(Scaled(preset));
    WorkloadConfig wc;
    wc.num_queries = num_queries;
    wc.seed = 1010;
    const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);

    // The "Real" log is the workload itself (§5.1: "the query load is used
    // as query log in SIF-P-Real").
    std::vector<std::vector<TermId>> real_terms;
    for (const auto& wq : wl.queries) {
      real_terms.push_back(wq.sk.terms);
    }

    std::vector<std::string> time_row = {preset.name};
    std::vector<std::string> fh_row = {preset.name};

    // Plain SIF.
    {
      IndexOptions opts;
      opts.kind = IndexKind::kSIF;
      db.BuildIndex(opts);
      db.PrepareForQueries();
      const SkWorkloadMetrics m = RunSkWorkload(&db, wl);
      time_row.push_back(TablePrinter::Fmt(m.avg_millis, 2));
      fh_row.push_back(TablePrinter::Fmt(m.avg_false_hit_objects, 1));
    }

    struct Variant {
      QueryLogMode mode;
      std::vector<std::vector<TermId>> workload_terms;
    };
    const std::vector<Variant> variants = {
        {QueryLogMode::kReal, real_terms},
        {QueryLogMode::kFrequency, {}},
        {QueryLogMode::kRandom, {}},
    };
    for (const Variant& v : variants) {
      IndexOptions opts;
      opts.kind = IndexKind::kSIFP;
      opts.sifp.log_provider = MakeQueryLogProvider(
          v.mode, v.workload_terms, /*terms_per_query=*/3,
          /*queries_per_edge=*/8, /*seed=*/1234);
      db.BuildIndex(opts);
      db.PrepareForQueries();
      const SkWorkloadMetrics m = RunSkWorkload(&db, wl);
      time_row.push_back(TablePrinter::Fmt(m.avg_millis, 2));
      fh_row.push_back(TablePrinter::Fmt(m.avg_false_hit_objects, 1));
    }
    time_table.AddRow(time_row);
    fh_table.AddRow(fh_row);
  }

  std::printf("\navg query response time (ms)\n");
  time_table.Print();
  std::printf("\navg # false-hit objects per query\n");
  fh_table.Print();
  return 0;
}
