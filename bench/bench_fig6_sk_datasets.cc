// Reproduces Fig. 6: SK search across the four datasets with the four
// object indexes — (a) query response time, (b) index construction time,
// (c) index size. The expected shape (§5.1): IR is several times slower
// than the rest; IF < IR; SIF and SIF-P fastest; SIF-P costs the most
// construction time; SIF/SIF-P sizes only slightly above IF.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace dsks;        // NOLINT
using namespace dsks::bench; // NOLINT

int main() {
  PrintHeader("Fig. 6: SK search on different datasets", "Fig. 6(a)-(c)");
  const size_t num_queries = QueriesFromEnv(60);

  const std::vector<IndexKind> kinds = {IndexKind::kIR, IndexKind::kIF,
                                        IndexKind::kSIF, IndexKind::kSIFP};

  TablePrinter time_table({"dataset", "IR", "IF", "SIF", "SIF-P"});
  TablePrinter io_table({"dataset", "IR", "IF", "SIF", "SIF-P"});
  TablePrinter build_table({"dataset", "IR", "IF", "SIF", "SIF-P"});
  TablePrinter size_table({"dataset", "IR", "IF", "SIF", "SIF-P"});

  for (const DatasetConfig& preset : AllPresets()) {
    Database db(Scaled(preset));
    WorkloadConfig wc;
    wc.num_queries = num_queries;
    wc.seed = 4242;
    const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);

    std::vector<std::string> time_row = {preset.name};
    std::vector<std::string> io_row = {preset.name};
    std::vector<std::string> build_row = {preset.name};
    std::vector<std::string> size_row = {preset.name};
    for (IndexKind kind : kinds) {
      IndexOptions opts;
      opts.kind = kind;
      const auto info = db.BuildIndex(opts);
      db.PrepareForQueries();
      const SkWorkloadMetrics m = RunSkWorkload(&db, wl);
      time_row.push_back(TablePrinter::Fmt(m.avg_millis, 2));
      io_row.push_back(TablePrinter::Fmt(m.avg_io, 0));
      build_row.push_back(TablePrinter::Fmt(info.build_millis, 0));
      size_row.push_back(
          TablePrinter::Fmt(static_cast<double>(info.size_bytes) / 1048576.0,
                            1));
    }
    time_table.AddRow(time_row);
    io_table.AddRow(io_row);
    build_table.AddRow(build_row);
    size_table.AddRow(size_row);
  }

  std::printf("\n(a) avg query response time (ms)\n");
  time_table.Print();
  std::printf("\n(a') avg # I/O accesses per query\n");
  io_table.Print();
  std::printf("\n(b) index construction time (ms)\n");
  build_table.Print();
  std::printf("\n(c) index size (MB)\n");
  size_table.Print();
  return 0;
}
