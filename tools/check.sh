#!/usr/bin/env bash
# Builds and runs the tier-1 test suite under AddressSanitizer and
# ThreadSanitizer (cmake -DDSKS_SANITIZE=...) — with a dedicated chaos
# pass exercising storage fault injection under each sanitizer — then a
# Release perf smoke that fails if bench_throughput's single-thread qps
# dropped more than 25% below the committed
# bench/baseline_throughput.json, plus a `dsks_cli chaos` smoke proving
# the process survives injected faults. Usage:
#
#   tools/check.sh            # both sanitizers + perf smoke
#   tools/check.sh thread     # just one sanitizer (skips the perf smoke)
#
# DSKS_SKIP_PERF=1 skips the perf smoke. Build trees go to build-asan/,
# build-tsan/ and build-perf/ next to build/ (all gitignored).
set -euo pipefail

cd "$(dirname "$0")/.."

sanitizers=("${@:-address}")
if [ "$#" -eq 0 ]; then
  sanitizers=(address thread)
fi

for san in "${sanitizers[@]}"; do
  case "$san" in
    address) dir=build-asan ;;
    thread)  dir=build-tsan ;;
    *)       dir=build-$san ;;
  esac
  echo "=== $san sanitizer: configuring $dir ==="
  cmake -B "$dir" -S . -DDSKS_SANITIZE="$san" > /dev/null
  cmake --build "$dir" -j"$(nproc)"
  echo "=== $san sanitizer: running tests ==="
  # die_after_fork=0: gtest death tests fork; TSan only instruments the
  # parent side here and the forked child exec()s or exits immediately.
  (cd "$dir" && TSAN_OPTIONS="die_after_fork=0" ctest --output-on-failure -j"$(nproc)")
  # The chaos suite is in ctest already; run it again on its own so a
  # sanitizer hit in the fault-handling paths is attributed loudly.
  echo "=== $san sanitizer: chaos (storage faults under $san) ==="
  (cd "$dir" && TSAN_OPTIONS="die_after_fork=0" ./tests/chaos_test \
      --gtest_brief=1)
  # Storage and chaos suites again with pages on a real file: the ctest
  # pass above covered the sim backend (the default); DSKS_TEST_BACKEND
  # reruns the same binaries against pread/pwrite + CRC sidecar, so both
  # backends face the same faults under the same sanitizer.
  echo "=== $san sanitizer: storage + chaos suites on the file backend ==="
  for t in storage_test fault_injection_test buffer_pool_concurrency_test \
           durability_test prefetch_test obs_test trace_attribution_test \
           chaos_test; do
    (cd "$dir" && DSKS_TEST_BACKEND=file TSAN_OPTIONS="die_after_fork=0" \
        "./tests/$t" --gtest_brief=1)
  done
  # The query-service suite on its own too: the TCP front end is where
  # worker threads, the batcher, the poll loop and client threads all
  # meet, so a data race there should be attributed loudly, like chaos.
  echo "=== $san sanitizer: query service (server_test under $san) ==="
  (cd "$dir" && TSAN_OPTIONS="die_after_fork=0" ./tests/server_test \
      --gtest_brief=1)
  # Same suites once more with DSKS_TEST_IO=async, on both backends:
  # fire-and-forget prefetches now complete on engine threads (worker pool
  # on sim, io_uring or worker pool on file), so this is where the
  # sanitizers see the reaper racing demand fetches, evictions, Clear and
  # pool destruction.
  echo "=== $san sanitizer: storage + chaos suites under async I/O ==="
  for backend in sim file; do
    for t in storage_test fault_injection_test buffer_pool_concurrency_test \
             prefetch_test async_io_test chaos_test; do
      (cd "$dir" && DSKS_TEST_BACKEND=$backend DSKS_TEST_IO=async \
          TSAN_OPTIONS="die_after_fork=0" "./tests/$t" --gtest_brief=1)
    done
  done
  echo "=== $san sanitizer: OK ==="
done

# Perf smoke: only in the default full run, and skippable for machines
# where a Release build or stable timing is unavailable.
if [ "$#" -eq 0 ] && [ "${DSKS_SKIP_PERF:-0}" != "1" ]; then
  echo "=== perf smoke: building build-perf (Release) ==="
  cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
  cmake --build build-perf -j"$(nproc)" --target bench_throughput --target dsks_cli
  echo "=== perf smoke: bench_throughput, 3 runs, best counts ==="
  : > build-perf/perf_smoke.jsonl
  for _ in 1 2 3; do
    (cd build-perf && DSKS_IO_DELAY_US=0 DSKS_BENCH_QUERIES=100 \
        DSKS_BENCH_THREADS=1 ./bench/bench_throughput) |
      sed -n 's/^JSON //p' >> build-perf/perf_smoke.jsonl
  done
  python3 tools/perf_gate.py bench/baseline_throughput.json \
    build-perf/perf_smoke.jsonl
  echo "=== perf smoke: OK ==="

  # Tracing-overhead gate: the same bench re-run with 1-in-16 sampled
  # tracing must stay inside the noise band of the unsampled smoke above.
  # "Always-on sampled tracing" is only honest if sampling is ~free.
  echo "=== tracing-overhead gate: 3 sampled runs vs the unsampled smoke ==="
  : > build-perf/perf_sampled.jsonl
  for _ in 1 2 3; do
    (cd build-perf && DSKS_IO_DELAY_US=0 DSKS_BENCH_QUERIES=100 \
        DSKS_BENCH_THREADS=1 DSKS_BENCH_SAMPLE=16 ./bench/bench_throughput) |
      sed -n 's/^JSON //p' >> build-perf/perf_sampled.jsonl
  done
  python3 tools/perf_gate.py overhead build-perf/perf_smoke.jsonl \
    build-perf/perf_sampled.jsonl
  echo "=== tracing-overhead gate: OK ==="

  # Stats-endpoint smoke: a bench run serving its live stats must answer
  # scrapes of all three endpoints with valid payloads. /healthz is hit
  # while the benches still run; the full scrape happens in the linger
  # window after the last drain, so it sees complete metrics and cannot
  # race bench exit.
  echo "=== stats smoke: scraping /metrics /varz /tracez from a bench run ==="
  rm -f build-perf/stats_smoke.out
  (cd build-perf && DSKS_IO_DELAY_US=0 DSKS_BENCH_QUERIES=64 \
      DSKS_BENCH_THREADS=2 DSKS_BENCH_SAMPLE=8 DSKS_BENCH_STATS_PORT=0 \
      DSKS_BENCH_STATS_LINGER_MS=8000 ./bench/bench_throughput \
      > stats_smoke.out) &
  stats_pid=$!
  stats_url=""
  for _ in $(seq 1 150); do
    stats_url="$(sed -n 's/^STATS //p' build-perf/stats_smoke.out 2>/dev/null |
      head -1)"
    [ -n "$stats_url" ] && break
    sleep 0.2
  done
  if [ -z "$stats_url" ]; then
    echo "stats smoke: bench never printed a STATS line" >&2
    cat build-perf/stats_smoke.out >&2
    exit 1
  fi
  curl -fsS "$stats_url/healthz" > /dev/null   # live while benches run
  for _ in $(seq 1 300); do
    grep -q 'Expected:' build-perf/stats_smoke.out && break
    sleep 0.2
  done
  curl -fsS "$stats_url/metrics" | grep -q '^# TYPE ' || {
    echo "stats smoke: /metrics has no Prometheus TYPE lines" >&2
    exit 1
  }
  curl -fsS "$stats_url/varz" > build-perf/varz_smoke.json
  python3 tools/perf_gate.py validate-metrics build-perf/varz_smoke.json
  curl -fsS "$stats_url/tracez" > build-perf/tracez_smoke.json
  python3 - build-perf/tracez_smoke.json <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
if snap["recorded"] == 0 or not snap["recent"]:
    sys.exit("stats smoke: /tracez recorded no queries")
print(f"stats smoke: /tracez recorded {snap['recorded']} queries, "
      f"{len(snap['slowest'])} slowest retained")
EOF
  wait "$stats_pid"
  echo "=== stats smoke: OK ==="

  # Observability smoke: the bench artifact must match the schema
  # (including the merged-histogram fields and a per-phase profile), and
  # the metrics endpoint must expose the executor histogram plus live
  # pool/disk sources.
  echo "=== obs smoke: validating BENCH_throughput.json + dsks_cli metrics ==="
  python3 tools/perf_gate.py validate-bench build-perf/BENCH_throughput.json
  ./build-perf/tools/dsks_cli metrics --queries 32 --threads 2 \
    > build-perf/metrics_smoke.json
  python3 tools/perf_gate.py validate-metrics build-perf/metrics_smoke.json
  echo "=== obs smoke: OK ==="

  # Chaos smoke: a Release-build workload under injected read faults must
  # exit 0 with its failures accounted — queries fail, the process does not.
  echo "=== chaos smoke: dsks_cli chaos under injected faults ==="
  ./build-perf/tools/dsks_cli chaos --queries 128 --threads 8 \
    --read-fault-p 0.002 --retries 2 --seed 42
  echo "=== chaos smoke: OK ==="

  # Server smoke: start the query server, run one valid and one malformed
  # query over the socket, scrape the shared-listener observability
  # routes, then stop it with SIGTERM and expect a clean summary. Then an
  # overload drill at ~4x capacity whose JSON record must pass the schema
  # + exact-admission gate with real shedding, and the end-to-end chaos
  # drill over a socket. Note: no DSKS_IO_DELAY_US=0 here — the sim
  # disk's default per-read delay is what makes the drill actually
  # saturate its tiny queue.
  echo "=== server smoke: serve, query, scrape, overload drill, shutdown ==="
  rm -f build-perf/serve_smoke.out
  ./build-perf/tools/dsks_cli serve --port 0 --duration-ms 120000 \
      > build-perf/serve_smoke.out &
  serve_pid=$!
  serve_port=""
  for _ in $(seq 1 300); do
    serve_port="$(sed -n \
      's/^serving queries on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      build-perf/serve_smoke.out 2>/dev/null | head -1)"
    [ -n "$serve_port" ] && break
    sleep 0.2
  done
  if [ -z "$serve_port" ]; then
    echo "server smoke: serve never printed its port" >&2
    cat build-perf/serve_smoke.out >&2
    exit 1
  fi
  python3 - "$serve_port" <<'EOF'
import json, socket, sys
port = int(sys.argv[1])
s = socket.create_connection(("127.0.0.1", port), timeout=10)
f = s.makefile("r")
# A valid query answers OK with its id echoed...
s.sendall(b'{"op":"sk","terms":[1,2],"edge":0,"offset":0,'
          b'"delta":1000,"id":"smoke"}\n')
resp = json.loads(f.readline())
if resp.get("status") != "OK" or resp.get("id") != "smoke":
    sys.exit(f"server smoke: unexpected response {resp}")
# ...and a malformed line answers INVALID_ARGUMENT on the same connection.
s.sendall(b"this is not json\n")
resp = json.loads(f.readline())
if resp.get("status") != "INVALID_ARGUMENT":
    sys.exit(f"server smoke: malformed line answered {resp}")
print("server smoke: query OK, malformed line rejected in-band")
EOF
  curl -fsS "http://127.0.0.1:$serve_port/metrics" | grep -q '^# TYPE ' || {
    echo "server smoke: /metrics has no Prometheus TYPE lines" >&2
    exit 1
  }
  curl -fsS "http://127.0.0.1:$serve_port/statusz" |
    grep -q '"admitted":1' || {
    echo "server smoke: /statusz does not show the admitted query" >&2
    exit 1
  }
  curl -fsS "http://127.0.0.1:$serve_port/healthz" > /dev/null
  kill -TERM "$serve_pid"
  wait "$serve_pid" || {
    echo "server smoke: serve did not exit cleanly on SIGTERM" >&2
    exit 1
  }
  grep -q '^served ' build-perf/serve_smoke.out || {
    echo "server smoke: serve printed no shutdown summary" >&2
    exit 1
  }
  ./build-perf/tools/dsks_cli drill --clients 8 --queries 32 --threads 2 \
      --queue 8 --invalid-p 0.05 > build-perf/drill_smoke.out
  grep '"bench":"server_drill"' build-perf/drill_smoke.out |
    head -1 > build-perf/drill_smoke.json
  python3 tools/perf_gate.py validate-server build-perf/drill_smoke.json
  python3 - build-perf/drill_smoke.json <<'EOF'
import json, sys
rec = json.load(open(sys.argv[1]))
if rec["server_shed"] == 0:
    sys.exit("server smoke: drill at 4x capacity shed nothing — the "
             "overload probe is not probing overload")
print(f"server smoke: drill shed {rec['server_shed']} of "
      f"{rec['server_offered']} offered, exactly accounted")
EOF
  ./build-perf/tools/dsks_cli chaos --socket --queries 128 --threads 8 \
      --read-fault-p 0.002 --retries 2 --seed 42
  echo "=== server smoke: OK ==="

  # File-backend smoke: a small bench run with pages on a real file must
  # produce a schema-valid artifact stamped "backend":"file" (kept in a
  # separate cwd so it can never be confused with the sim artifact or fed
  # to the sim perf gate), and chaos must survive on real files too.
  echo "=== file-backend smoke: bench_throughput + dsks_cli chaos ==="
  mkdir -p build-perf/file-smoke
  (cd build-perf/file-smoke && DSKS_IO_DELAY_US=0 DSKS_BENCH_SCALE=0.3 \
      DSKS_BENCH_QUERIES=40 DSKS_BENCH_THREADS=1,2 \
      ../bench/bench_throughput --backend=file)
  python3 tools/perf_gate.py validate-bench \
    build-perf/file-smoke/BENCH_throughput.json
  grep -q '"backend":"file"' build-perf/file-smoke/BENCH_throughput.json || {
    echo "file-backend smoke: artifact is missing \"backend\":\"file\"" >&2
    exit 1
  }
  ./build-perf/tools/dsks_cli chaos --backend file --queries 128 \
    --threads 8 --read-fault-p 0.002 --retries 2 --seed 42
  echo "=== file-backend smoke: OK ==="

  # Cold-cache smoke: the prefetch A/B on real files must produce a
  # schema-valid artifact with cold records, and prefetching must actually
  # reduce blocking misses there — a silent prefetch regression would
  # otherwise only show up as slowly eroding cold-start latency.
  echo "=== cold-cache smoke: bench_throughput --cold on the file backend ==="
  mkdir -p build-perf/cold-smoke
  (cd build-perf/cold-smoke && DSKS_IO_DELAY_US=0 DSKS_BENCH_SCALE=0.3 \
      DSKS_BENCH_QUERIES=40 ../bench/bench_throughput --backend=file --cold)
  python3 tools/perf_gate.py validate-bench \
    build-perf/cold-smoke/BENCH_throughput.json
  grep -q '"cold":1' build-perf/cold-smoke/BENCH_throughput.json || {
    echo "cold-cache smoke: artifact is missing \"cold\":1 records" >&2
    exit 1
  }
  python3 - build-perf/cold-smoke/BENCH_throughput.json <<'EOF'
import json, sys
recs = json.load(open(sys.argv[1]))
for wl in ("sk", "div-com"):
    misses = {r["prefetch"]: r["pool_misses"] for r in recs
              if r.get("cold") == 1 and r.get("workload") == wl}
    if misses.get(1, 1) * 2 > misses.get(0, 0):
        sys.exit(f"cold-cache smoke: {wl}: prefetch-on misses {misses.get(1)} "
                 f"not < half of prefetch-off misses {misses.get(0)}")
    print(f"cold-cache smoke: {wl}: misses {misses[0]} -> {misses[1]}")
EOF
  echo "=== cold-cache smoke: OK ==="

  # Async I/O gate, two halves. (a) File backend, cold A/B: under
  # --io=async the blocking demand misses must be strictly below the sync
  # run's — the deterministic evidence that speculative reads complete
  # before demand arrives (wall time on a warm OS page cache is memcpy
  # noise, so the counters are the gate, not the clock). (b) Sim backend
  # at a device-class DSKS_IO_DELAY_US: async total cold wall must stay
  # within 1.25x of sync. On a single core with a data-dependent frontier
  # the two regimes measure at parity, so this bound is a regression
  # tripwire for the failure mode that matters: an async path that
  # serializes round trips behind too few engine workers measures 3-4x.
  echo "=== async gate: cold A/B sync vs async (file misses, sim wall) ==="
  mkdir -p build-perf/async-smoke
  for io in sync async; do
    (cd build-perf/async-smoke && DSKS_IO_DELAY_US=0 DSKS_BENCH_SCALE=0.3 \
        DSKS_BENCH_QUERIES=40 ../bench/bench_throughput --backend=file \
        --cold --io=$io)
    mv build-perf/async-smoke/BENCH_throughput.json \
       "build-perf/async-smoke/BENCH_file_$io.json"
    (cd build-perf/async-smoke && DSKS_IO_DELAY_US=200 DSKS_BENCH_SCALE=0.3 \
        DSKS_BENCH_QUERIES=40 ../bench/bench_throughput --cold --io=$io)
    mv build-perf/async-smoke/BENCH_throughput.json \
       "build-perf/async-smoke/BENCH_sim_$io.json"
  done
  python3 tools/perf_gate.py validate-bench \
    build-perf/async-smoke/BENCH_file_async.json
  grep -q '"io":"async"' build-perf/async-smoke/BENCH_file_async.json || {
    echo "async gate: artifact is missing \"io\":\"async\"" >&2
    exit 1
  }
  python3 - build-perf/async-smoke <<'EOF'
import json, sys
d = sys.argv[1]
def cold_on(path):
    return {r["workload"]: r for r in json.load(open(path))
            if r.get("cold") == 1 and r.get("prefetch") == 1}
sync_f, async_f = cold_on(f"{d}/BENCH_file_sync.json"), \
                  cold_on(f"{d}/BENCH_file_async.json")
for wl in ("sk", "div-com"):
    s, a = sync_f[wl]["pool_misses"], async_f[wl]["pool_misses"]
    if a >= s:
        sys.exit(f"async gate: {wl}: async blocking misses {a} not strictly "
                 f"below sync {s} — speculative reads are not overlapping")
    print(f"async gate: {wl}: blocking misses {s} -> {a} (file backend)")
sync_w = sum(r["wall_ms"] for r in cold_on(f"{d}/BENCH_sim_sync.json").values())
async_w = sum(r["wall_ms"] for r in cold_on(f"{d}/BENCH_sim_async.json").values())
if async_w > 1.25 * sync_w:
    sys.exit(f"async gate: sim cold wall {async_w:.0f}ms exceeds 1.25x the "
             f"sync regime's {sync_w:.0f}ms at DSKS_IO_DELAY_US=200 — async "
             f"round trips are serializing instead of overlapping")
print(f"async gate: sim cold wall sync {sync_w:.0f}ms, async {async_w:.0f}ms "
      f"(bound 1.25x)")
EOF
  ./build-perf/tools/dsks_cli chaos --io async --io-depth 32 --queries 128 \
    --threads 8 --read-fault-p 0.002 --retries 2 --seed 42
  ./build-perf/tools/dsks_cli chaos --backend file --io async --queries 128 \
    --threads 8 --read-fault-p 0.002 --retries 2 --seed 42
  echo "=== async gate: OK ==="
fi
