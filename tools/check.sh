#!/usr/bin/env bash
# Builds and runs the tier-1 test suite under AddressSanitizer and
# ThreadSanitizer (cmake -DDSKS_SANITIZE=...). Usage:
#
#   tools/check.sh            # both sanitizers
#   tools/check.sh thread     # just one
#
# Build trees go to build-asan/ and build-tsan/ next to build/ (all
# gitignored).
set -euo pipefail

cd "$(dirname "$0")/.."

sanitizers=("${@:-address}")
if [ "$#" -eq 0 ]; then
  sanitizers=(address thread)
fi

for san in "${sanitizers[@]}"; do
  case "$san" in
    address) dir=build-asan ;;
    thread)  dir=build-tsan ;;
    *)       dir=build-$san ;;
  esac
  echo "=== $san sanitizer: configuring $dir ==="
  cmake -B "$dir" -S . -DDSKS_SANITIZE="$san" > /dev/null
  cmake --build "$dir" -j"$(nproc)"
  echo "=== $san sanitizer: running tests ==="
  # die_after_fork=0: gtest death tests fork; TSan only instruments the
  # parent side here and the forked child exec()s or exits immediately.
  (cd "$dir" && TSAN_OPTIONS="die_after_fork=0" ctest --output-on-failure -j"$(nproc)")
  echo "=== $san sanitizer: OK ==="
done
