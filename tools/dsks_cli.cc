// dsks_cli — command-line front end for the library.
//
//   dsks_cli generate --preset NA|SF|TW|SYN [--scale F] --out FILE
//       Generate a dataset and save it in the DSKS binary format.
//   dsks_cli info FILE
//       Print dataset statistics (Table 2 style).
//   dsks_cli query --data FILE [--index ir|if|sif|sifp|sifg]
//             --terms T1,T2,... [--object-loc ID] [--delta D]
//             [--k K] [--mode boolean|knn|ranked|div-seq|div-com]
//             [--lambda L] [--alpha A] [--threads N] [--repeat R]
//       Load a dataset, build the index, run one query. The query point
//       defaults to the location of object --object-loc (default 0).
//       With --threads N > 1, additionally re-runs the query R times
//       (default 64 per thread) on an N-thread QueryExecutor sharing the
//       index and buffer pool, and reports aggregate throughput.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/timer.h"
#include "datagen/presets.h"
#include "datagen/workload.h"
#include "graph/serialization.h"
#include "harness/database.h"
#include "harness/query_executor.h"
#include "index/inverted_file.h"
#include "index/inverted_rtree.h"
#include "index/sif.h"
#include "index/sif_group.h"
#include "index/sif_partitioned.h"
#include "core/distance_oracle.h"
#include "core/div_search.h"
#include "core/ranked_search.h"
#include "graph/ccam.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "datagen/network_generator.h"
#include "datagen/object_generator.h"
#include "index/query_log.h"

namespace dsks {
namespace {

/// Minimal --flag value parser: flags precede their single value.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 0; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) == 0 && i + 1 < argc) {
        values_[argv[i] + 2] = argv[i + 1];
        ++i;
      } else {
        positional_.emplace_back(argv[i]);
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  size_t GetSize(const std::string& key, size_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end()
               ? fallback
               : static_cast<size_t>(std::atoll(it->second.c_str()));
  }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  dsks_cli generate --preset NA|SF|TW|SYN [--scale F] "
               "--out FILE\n"
               "  dsks_cli info FILE\n"
               "  dsks_cli query --data FILE [--index sif] --terms 1,2,3\n"
               "           [--object-loc ID] [--delta 1500] [--k 10]\n"
               "           [--mode boolean|knn|ranked|div-seq|div-com]\n"
               "           [--lambda 0.8] [--alpha 0.5]\n"
               "           [--threads 4] [--repeat 64]\n");
  return 2;
}

DatasetConfig PresetByName(const std::string& name) {
  for (const DatasetConfig& c : AllPresets()) {
    if (c.name == name) {
      return c;
    }
  }
  std::fprintf(stderr, "unknown preset '%s' (want NA, SF, SYN or TW)\n",
               name.c_str());
  std::exit(2);
}

int CmdGenerate(const Args& args) {
  const std::string out = args.Get("out", "");
  if (out.empty()) {
    return Usage();
  }
  DatasetConfig cfg = PresetByName(args.Get("preset", "SYN"));
  const double scale = args.GetDouble("scale", 1.0);
  if (scale != 1.0) {
    cfg = ScalePreset(cfg, scale);
  }
  std::printf("generating %s (scale %.2f)...\n", cfg.name.c_str(), scale);
  auto net = GenerateRoadNetwork(cfg.network);
  auto objects = GenerateObjects(*net, cfg.objects);
  const Status s = SaveDataset(*net, *objects, out);
  if (!s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu nodes, %zu edges, %zu objects\n", out.c_str(),
              net->num_nodes(), net->num_edges(), objects->size());
  return 0;
}

int CmdInfo(const Args& args) {
  if (args.positional().size() < 3) {
    return Usage();
  }
  const std::string path = args.positional()[2];
  std::unique_ptr<RoadNetwork> net;
  std::unique_ptr<ObjectSet> objects;
  const Status s = LoadDataset(path, &net, &objects);
  if (!s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const double avg_kw = static_cast<double>(objects->TotalTermOccurrences()) /
                        static_cast<double>(objects->size());
  std::printf("%s:\n  nodes    %zu\n  edges    %zu\n  objects  %zu\n"
              "  avg keywords/object  %.2f\n",
              path.c_str(), net->num_nodes(), net->num_edges(),
              objects->size(), avg_kw);
  return 0;
}

std::vector<TermId> ParseTerms(const std::string& csv) {
  std::vector<TermId> terms;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) {
      comma = csv.size();
    }
    terms.push_back(
        static_cast<TermId>(std::atoll(csv.substr(pos, comma - pos).c_str())));
    pos = comma + 1;
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  return terms;
}

int CmdQuery(const Args& args) {
  const std::string path = args.Get("data", "");
  const std::string terms_csv = args.Get("terms", "");
  if (path.empty() || terms_csv.empty()) {
    return Usage();
  }
  // Loading through the serialization path, then wrapping into a Database
  // would duplicate the dataset; the CLI builds the stack directly.
  std::unique_ptr<RoadNetwork> net;
  std::unique_ptr<ObjectSet> objects;
  Status s = LoadDataset(path, &net, &objects);
  if (!s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  size_t vocab = 0;
  for (const auto& o : objects->objects()) {
    for (TermId t : o.terms) {
      vocab = std::max<size_t>(vocab, t + 1);
    }
  }

  DiskManager disk;
  BufferPool pool(&disk, 1u << 16);
  const CcamFile ccam = CcamFileBuilder::Build(*net, &disk);
  CcamGraph graph(&ccam, &pool);

  const std::string index_name = args.Get("index", "sif");
  std::unique_ptr<ObjectIndex> index;
  Timer build_timer;
  if (index_name == "ir") {
    index = std::make_unique<InvertedRTreeIndex>(&pool, *objects, vocab);
  } else if (index_name == "if") {
    index = std::make_unique<InvertedFileIndex>(&pool, *objects, vocab);
  } else if (index_name == "sifp") {
    SifPConfig cfg;
    cfg.log_provider =
        MakeQueryLogProvider(QueryLogMode::kFrequency, {}, 3, 8, 1);
    index =
        std::make_unique<SifPartitionedIndex>(&pool, *objects, vocab, cfg);
  } else if (index_name == "sifg") {
    index = std::make_unique<SifGroupIndex>(&pool, *objects, vocab, 25);
  } else {
    index = std::make_unique<SifIndex>(&pool, *objects, vocab);
  }
  std::printf("built %s in %.0f ms (%.1f MB)\n", index->name().c_str(),
              build_timer.ElapsedMillis(),
              static_cast<double>(index->SizeBytes()) / 1048576.0);

  const auto& anchor = objects->object(static_cast<ObjectId>(
      args.GetSize("object-loc", 0) % objects->size()));
  SkQuery q;
  q.loc = NetworkLocation{anchor.edge, anchor.offset};
  q.terms = ParseTerms(terms_csv);
  q.delta_max = args.GetDouble("delta", 1500.0);
  const QueryEdgeInfo qe = MakeQueryEdgeInfo(*net, q.loc);
  const std::string mode = args.Get("mode", "boolean");
  const size_t k = args.GetSize("k", 10);

  Timer timer;
  if (mode == "knn") {
    const auto res = BooleanKnnSearch(&graph, index.get(), q, qe, k);
    for (const auto& r : res) {
      std::printf("  object %u  dist %.1f\n", r.id, r.dist);
    }
  } else if (mode == "ranked") {
    RankedQuery rq;
    rq.sk = q;
    rq.k = k;
    rq.alpha = args.GetDouble("alpha", 0.5);
    const auto res = RankedSkSearch(&graph, index.get(), rq, qe);
    for (const auto& r : res) {
      std::printf("  object %u  dist %.1f  matched %u/%zu  score %.4f\n",
                  r.id, r.dist, r.matched, q.terms.size(), r.score);
    }
  } else if (mode == "div-seq" || mode == "div-com") {
    DivQuery dq;
    dq.sk = q;
    dq.k = k;
    dq.lambda = args.GetDouble("lambda", 0.8);
    QueryContext ctx;
    IncrementalSkSearch search(&graph, index.get(), dq.sk, qe, &ctx);
    PairwiseDistanceOracle oracle(&graph, 2.0 * q.delta_max,
                                  OracleStrategy::kSharedExpansion, &ctx);
    oracle.SetQueryEdge(qe);
    const DivSearchOutput out = mode == "div-com"
                                    ? DiversifiedSearchCOM(&search, dq, &oracle)
                                    : DiversifiedSearchSEQ(&search, dq,
                                                           &oracle);
    std::printf("f(S) = %.4f over %lu candidates%s\n", out.objective,
                static_cast<unsigned long>(out.stats.candidates),
                out.stats.early_terminated ? " (early termination)" : "");
    for (const auto& r : out.selected) {
      std::printf("  object %u  dist %.1f\n", r.id, r.dist);
    }
  } else {
    IncrementalSkSearch search(&graph, index.get(), q, qe);
    SkResult r;
    size_t count = 0;
    while (search.Next(&r)) {
      if (count < 20) {
        std::printf("  object %u  dist %.1f\n", r.id, r.dist);
      }
      ++count;
    }
    if (count > 20) {
      std::printf("  ... and %zu more\n", count - 20);
    }
    std::printf("%zu objects satisfy the query\n", count);
  }
  std::printf("query time %.1f ms, %lu page reads\n", timer.ElapsedMillis(),
              static_cast<unsigned long>(disk.stats().reads.load()));

  // Optional concurrent re-run: the storage layer is concurrent-reader
  // safe, so N workers can hammer the same index and buffer pool.
  const size_t threads = args.GetSize("threads", 1);
  if (threads > 1) {
    const size_t repeat = args.GetSize("repeat", 64);
    const double alpha = args.GetDouble("alpha", 0.5);
    const double lambda = args.GetDouble("lambda", 0.8);
    ExecutorConfig config;
    config.num_threads = threads;
    QueryExecutor exec(config);
    Timer wall;
    for (size_t i = 0; i < threads * repeat; ++i) {
      exec.SubmitWithContext([&graph, &index, &q, &qe, mode, k, alpha,
                              lambda](QueryContext* ctx) {
        if (mode == "knn") {
          BooleanKnnSearch(&graph, index.get(), q, qe, k);
        } else if (mode == "ranked") {
          RankedQuery rq;
          rq.sk = q;
          rq.k = k;
          rq.alpha = alpha;
          RankedSkSearch(&graph, index.get(), rq, qe);
        } else if (mode == "div-seq" || mode == "div-com") {
          DivQuery dq;
          dq.sk = q;
          dq.k = k;
          dq.lambda = lambda;
          IncrementalSkSearch search(&graph, index.get(), dq.sk, qe, ctx);
          PairwiseDistanceOracle oracle(&graph, 2.0 * q.delta_max,
                                        OracleStrategy::kSharedExpansion, ctx);
          oracle.SetQueryEdge(qe);
          if (mode == "div-com") {
            DiversifiedSearchCOM(&search, dq, &oracle);
          } else {
            DiversifiedSearchSEQ(&search, dq, &oracle);
          }
        } else {
          IncrementalSkSearch search(&graph, index.get(), q, qe, ctx);
          SkResult r;
          while (search.Next(&r)) {
          }
        }
      });
    }
    const ThroughputMetrics m =
        SummarizeThroughput(threads, wall.ElapsedMillis(), exec.Drain());
    std::printf(
        "concurrent rerun: %zu threads, %zu queries, %.1f qps "
        "(p50 %.3f ms, p99 %.3f ms)\n",
        m.num_threads, m.queries, m.qps, m.p50_millis, m.p99_millis);
  }
  return 0;
}

int Main(int argc, char** argv) {
  Args args(argc, argv);
  if (argc < 2) {
    return Usage();
  }
  const std::string cmd = argv[1];
  if (cmd == "generate") {
    return CmdGenerate(args);
  }
  if (cmd == "info") {
    return CmdInfo(args);
  }
  if (cmd == "query") {
    return CmdQuery(args);
  }
  return Usage();
}

}  // namespace
}  // namespace dsks

int main(int argc, char** argv) { return dsks::Main(argc, argv); }
