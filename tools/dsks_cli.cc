// dsks_cli — command-line front end for the library.
//
//   dsks_cli generate --preset NA|SF|TW|SYN [--scale F] --out FILE
//       Generate a dataset and save it in the DSKS binary format.
//   dsks_cli info FILE
//       Print dataset statistics (Table 2 style).
//   dsks_cli query --data FILE [--index ir|if|sif|sifp|sifg]
//             --terms T1,T2,... [--object-loc ID] [--delta D]
//             [--k K] [--mode boolean|knn|ranked|div-seq|div-com]
//             [--lambda L] [--alpha A] [--threads N] [--repeat R]
//             [--trace [json]]
//       Load a dataset, build the index, run one query. The query point
//       defaults to the location of object --object-loc (default 0).
//       With --threads N > 1, additionally re-runs the query R times
//       (default 64 per thread) on an N-thread QueryExecutor sharing the
//       index and buffer pool, and reports aggregate throughput.
//       --trace records per-phase spans with buffer-pool/disk deltas and
//       prints the span tree (or JSON with `--trace json`).
//   dsks_cli metrics [--scale F] [--index sif] [--queries N] [--threads N]
//             [--format json|prom]
//       Build a synthetic database, run a small concurrent workload, and
//       dump the metrics registry (storage counters bound as live sources
//       plus the executor's latency histogram).
//   dsks_cli serve-stats [--port P] [--scale F] [--index sif] [--threads N]
//             [--queries N] [--sample N] [--slow-ms F] [--duration-ms N]
//       Build a synthetic database, run a continuous sampled-traced
//       workload, and serve live telemetry over HTTP: /metrics
//       (Prometheus), /varz (JSON registry), /tracez (flight recorder),
//       /healthz. --port 0 picks an ephemeral port (printed on stdout);
//       --duration-ms 0 serves until killed.
//   dsks_cli chaos [--scale F] [--index sif] [--queries N] [--threads N]
//             [--read-fault-p P] [--write-fault-p P] [--corrupt-p P]
//             [--seed S] [--retries R]
//       Run a concurrent workload with storage fault injection armed and
//       prove the process survives: failed queries are counted per Status
//       code (never aborting), transient read faults optionally retried.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "datagen/presets.h"
#include "datagen/workload.h"
#include "graph/serialization.h"
#include "harness/database.h"
#include "harness/query_executor.h"
#include "index/inverted_file.h"
#include "index/inverted_rtree.h"
#include "index/sif.h"
#include "index/sif_group.h"
#include "index/sif_partitioned.h"
#include "core/distance_oracle.h"
#include "core/div_search.h"
#include "core/ranked_search.h"
#include "graph/ccam.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "datagen/network_generator.h"
#include "datagen/object_generator.h"
#include "index/query_log.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/stats_server.h"
#include "obs/trace.h"

namespace dsks {
namespace {

/// Minimal --flag value parser. Both spellings work: `--flag value` and
/// `--flag=value`. A flag followed by another flag (or by nothing) is
/// boolean — present with an empty value — so `--trace` and `--trace json`
/// both work.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 0; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) == 0) {
        const char* key = argv[i] + 2;
        if (const char* eq = std::strchr(key, '=')) {
          values_[std::string(key, eq - key)] = eq + 1;
        } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
          values_[key] = argv[i + 1];
          ++i;
        } else {
          values_[key] = "";
        }
      } else {
        positional_.emplace_back(argv[i]);
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  /// Checked numeric flags, shared by every subcommand: a present flag
  /// whose value does not parse completely as a number, or falls outside
  /// [min_value, max_value], prints an error and exits with status 2 —
  /// `--threads foo` must not silently become 0.
  double GetDouble(const std::string& key, double fallback, double min_value,
                   double max_value) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    const char* text = it->second.c_str();
    char* end = nullptr;
    const double v = std::strtod(text, &end);
    if (*text == '\0' || end == nullptr || *end != '\0') {
      std::fprintf(stderr, "--%s: '%s' is not a number\n", key.c_str(), text);
      std::exit(2);
    }
    if (!(v >= min_value && v <= max_value)) {
      std::fprintf(stderr, "--%s: %s out of range [%g, %g]\n", key.c_str(),
                   text, min_value, max_value);
      std::exit(2);
    }
    return v;
  }
  size_t GetSize(const std::string& key, size_t fallback, size_t min_value,
                 size_t max_value) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    const char* text = it->second.c_str();
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (*text == '\0' || end == nullptr || *end != '\0' || *text == '-') {
      std::fprintf(stderr, "--%s: '%s' is not a non-negative integer\n",
                   key.c_str(), text);
      std::exit(2);
    }
    if (v < min_value || v > max_value) {
      std::fprintf(stderr, "--%s: %s out of range [%zu, %zu]\n", key.c_str(),
                   text, min_value, max_value);
      std::exit(2);
    }
    return static_cast<size_t>(v);
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  dsks_cli generate --preset NA|SF|TW|SYN [--scale F] "
               "--out FILE\n"
               "  dsks_cli info FILE\n"
               "  dsks_cli query --data FILE [--index sif] --terms 1,2,3\n"
               "           [--object-loc ID] [--delta 1500] [--k 10]\n"
               "           [--mode boolean|knn|ranked|div-seq|div-com]\n"
               "           [--lambda 0.8] [--alpha 0.5]\n"
               "           [--threads 4] [--repeat 64] [--trace [json]]\n"
               "           [--prefetch on|off]\n"
               "  dsks_cli metrics [--scale 0.03] [--index sif]\n"
               "           [--queries 32] [--threads 2]\n"
               "           [--format=json|prometheus]\n"
               "  dsks_cli serve-stats [--port 0] [--scale 0.03] "
               "[--index sif]\n"
               "           [--threads 2] [--queries 64] [--sample 16]\n"
               "           [--slow-ms 0] [--duration-ms 0]\n"
               "  dsks_cli chaos [--scale 0.03] [--index sif] [--queries 256]\n"
               "           [--threads 8] [--read-fault-p 0.001]\n"
               "           [--write-fault-p 0] [--corrupt-p 0] [--seed 42]\n"
               "           [--retries 0]\n"
               "query/metrics/serve-stats/chaos also accept storage-backend "
               "flags:\n"
               "           [--backend sim|file] [--backend-path PATH]\n"
               "           [--o-direct] [--io sync|async] [--io-depth 64]\n");
  return 2;
}

/// Shared storage-backend flags: `--backend sim|file` selects where pages
/// live, `--backend-path PATH` names the index file (file backend only;
/// defaults to a fresh /tmp file that is removed on exit), `--o-direct`
/// asks the file backend to bypass the OS page cache. `--io async` serves
/// speculative prefetch reads on an asynchronous engine (io_uring when
/// the kernel offers it, a worker pool otherwise) so expansion compute
/// overlaps them; `--io-depth` bounds the pages in flight.
class CliBackend {
 public:
  explicit CliBackend(const Args& args) {
    const std::string name = args.Get("backend", "sim");
    if (name == "file") {
      options_.backend = DiskBackendKind::kFile;
      options_.path = args.Get("backend-path", "");
      if (options_.path.empty()) {
        options_.path =
            "/tmp/dsks_cli_" + std::to_string(::getpid()) + ".pages";
        owns_files_ = true;
      }
      options_.o_direct = args.Has("o-direct");
    } else if (name != "sim") {
      std::fprintf(stderr, "--backend: want 'sim' or 'file', got '%s'\n",
                   name.c_str());
      std::exit(2);
    }
    const std::string io = args.Get("io", "sync");
    if (io == "async") {
      options_.io = IoMode::kAsync;
    } else if (io != "sync") {
      std::fprintf(stderr, "--io: want 'sync' or 'async', got '%s'\n",
                   io.c_str());
      std::exit(2);
    }
    options_.io_depth = args.GetSize("io-depth", 64, 1, 4096);
  }
  ~CliBackend() {
    if (owns_files_) {
      std::remove(options_.path.c_str());
      std::remove((options_.path + ".crc").c_str());
    }
  }

  CliBackend(const CliBackend&) = delete;
  CliBackend& operator=(const CliBackend&) = delete;

  const DiskOptions& options() const { return options_; }
  const char* name() const { return DiskBackendKindName(options_.backend); }

 private:
  DiskOptions options_;
  bool owns_files_ = false;
};

DatasetConfig PresetByName(const std::string& name) {
  for (const DatasetConfig& c : AllPresets()) {
    if (c.name == name) {
      return c;
    }
  }
  std::fprintf(stderr, "unknown preset '%s' (want NA, SF, SYN or TW)\n",
               name.c_str());
  std::exit(2);
}

int CmdGenerate(const Args& args) {
  const std::string out = args.Get("out", "");
  if (out.empty()) {
    return Usage();
  }
  DatasetConfig cfg = PresetByName(args.Get("preset", "SYN"));
  const double scale = args.GetDouble("scale", 1.0, 1e-6, 1e6);
  if (scale != 1.0) {
    cfg = ScalePreset(cfg, scale);
  }
  std::printf("generating %s (scale %.2f)...\n", cfg.name.c_str(), scale);
  auto net = GenerateRoadNetwork(cfg.network);
  auto objects = GenerateObjects(*net, cfg.objects);
  const Status s = SaveDataset(*net, *objects, out);
  if (!s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu nodes, %zu edges, %zu objects\n", out.c_str(),
              net->num_nodes(), net->num_edges(), objects->size());
  return 0;
}

int CmdInfo(const Args& args) {
  if (args.positional().size() < 3) {
    return Usage();
  }
  const std::string path = args.positional()[2];
  std::unique_ptr<RoadNetwork> net;
  std::unique_ptr<ObjectSet> objects;
  const Status s = LoadDataset(path, &net, &objects);
  if (!s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const double avg_kw = static_cast<double>(objects->TotalTermOccurrences()) /
                        static_cast<double>(objects->size());
  std::printf("%s:\n  nodes    %zu\n  edges    %zu\n  objects  %zu\n"
              "  avg keywords/object  %.2f\n",
              path.c_str(), net->num_nodes(), net->num_edges(),
              objects->size(), avg_kw);
  return 0;
}

std::vector<TermId> ParseTerms(const std::string& csv) {
  std::vector<TermId> terms;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) {
      comma = csv.size();
    }
    const std::string token = csv.substr(pos, comma - pos);
    char* end = nullptr;
    const unsigned long long t = std::strtoull(token.c_str(), &end, 10);
    if (token.empty() || end == nullptr || *end != '\0') {
      std::fprintf(stderr, "--terms: '%s' is not a term id\n", token.c_str());
      std::exit(2);
    }
    terms.push_back(static_cast<TermId>(t));
    pos = comma + 1;
  }
  // Sorting and dedup happen again behind the API boundary
  // (NormalizeSkQuery); doing it here just keeps the printed query tidy.
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  return terms;
}

int CmdQuery(const Args& args) {
  const std::string path = args.Get("data", "");
  const std::string terms_csv = args.Get("terms", "");
  if (path.empty() || terms_csv.empty()) {
    return Usage();
  }
  // Loading through the serialization path, then wrapping into a Database
  // would duplicate the dataset; the CLI builds the stack directly.
  std::unique_ptr<RoadNetwork> net;
  std::unique_ptr<ObjectSet> objects;
  Status s = LoadDataset(path, &net, &objects);
  if (!s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  size_t vocab = 0;
  for (const auto& o : objects->objects()) {
    for (TermId t : o.terms) {
      vocab = std::max<size_t>(vocab, t + 1);
    }
  }

  CliBackend backend(args);
  DiskManager disk(backend.options());
  BufferPool pool(&disk, 1u << 16);
  // --prefetch off pins the pool to demand-only reads — the A/B knob for
  // attributing a query's I/O behavior to speculative batching.
  const std::string prefetch = args.Get("prefetch", "on");
  if (prefetch != "on" && prefetch != "off") {
    std::fprintf(stderr, "--prefetch: want 'on' or 'off', got '%s'\n",
                 prefetch.c_str());
    return 2;
  }
  pool.set_prefetch_enabled(prefetch == "on");
  const CcamFile ccam = CcamFileBuilder::Build(*net, &disk);
  CcamGraph graph(&ccam, &pool);

  const std::string index_name = args.Get("index", "sif");
  std::unique_ptr<ObjectIndex> index;
  Timer build_timer;
  if (index_name == "ir") {
    index = std::make_unique<InvertedRTreeIndex>(&pool, *objects, vocab);
  } else if (index_name == "if") {
    index = std::make_unique<InvertedFileIndex>(&pool, *objects, vocab);
  } else if (index_name == "sifp") {
    SifPConfig cfg;
    cfg.log_provider =
        MakeQueryLogProvider(QueryLogMode::kFrequency, {}, 3, 8, 1);
    index =
        std::make_unique<SifPartitionedIndex>(&pool, *objects, vocab, cfg);
  } else if (index_name == "sifg") {
    index = std::make_unique<SifGroupIndex>(&pool, *objects, vocab, 25);
  } else {
    index = std::make_unique<SifIndex>(&pool, *objects, vocab);
  }
  std::printf("built %s in %.0f ms (%.1f MB)\n", index->name().c_str(),
              build_timer.ElapsedMillis(),
              static_cast<double>(index->SizeBytes()) / 1048576.0);

  const auto& anchor = objects->object(static_cast<ObjectId>(
      args.GetSize("object-loc", 0, 0, SIZE_MAX) % objects->size()));
  SkQuery q;
  q.loc = NetworkLocation{anchor.edge, anchor.offset};
  q.terms = ParseTerms(terms_csv);
  q.delta_max = args.GetDouble("delta", 1500.0, 1e-9, 1e12);
  // The API boundary: a malformed query is an error message plus a nonzero
  // exit, never an abort inside the search.
  if (const Status qs = NormalizeSkQuery(&q); !qs.ok()) {
    std::fprintf(stderr, "invalid query: %s\n", qs.ToString().c_str());
    return 2;
  }
  const QueryEdgeInfo qe = MakeQueryEdgeInfo(*net, q.loc);
  const std::string mode = args.Get("mode", "boolean");
  const size_t k = args.GetSize("k", 10, 1, 1u << 20);

  // --trace: per-phase spans with pool/disk counter deltas. knn/ranked run
  // through search paths without a QueryContext, so only their end-to-end
  // root span is recorded; boolean and div modes get the full phase tree.
  const bool traced = args.Has("trace");
  obs::QueryTrace trace;
  obs::QueryTrace* trace_ptr = nullptr;
  QueryContext cli_ctx;
  if (traced) {
    // The trace snapshots the context's per-query attribution counters,
    // charged through the thread-affine account installed below — exact
    // even if other threads shared this pool.
    trace.BindContextIo(&cli_ctx.io);
    trace_ptr = &trace;
  }
  cli_ctx.trace = trace_ptr;
  obs::ScopedIoAccount io_account(&cli_ctx.io);

  const uint64_t reads_before = disk.stats().reads.load();
  const uint64_t prefetched_before = pool.stats().prefetch_issued.load();
  Timer timer;
  uint32_t root_span = 0;
  if (trace_ptr != nullptr) {
    root_span = trace.OpenSpan(obs::Phase::kQuery);
  }
  // A storage error fails the query, not the process: remember it, close
  // the trace normally (its spans are the partial-work account) and exit
  // nonzero at the end.
  Status query_status;
  if (mode == "knn") {
    std::vector<SkResult> res;
    query_status = BooleanKnnSearch(&graph, index.get(), q, qe, k, &res);
    for (const auto& r : res) {
      std::printf("  object %u  dist %.1f\n", r.id, r.dist);
    }
  } else if (mode == "ranked") {
    RankedQuery rq;
    rq.sk = q;
    rq.k = k;
    rq.alpha = args.GetDouble("alpha", 0.5, 0.0, 1.0);
    std::vector<RankedResult> res;
    query_status = RankedSkSearch(&graph, index.get(), rq, qe, &res);
    for (const auto& r : res) {
      std::printf("  object %u  dist %.1f  matched %u/%zu  score %.4f\n",
                  r.id, r.dist, r.matched, q.terms.size(), r.score);
    }
  } else if (mode == "div-seq" || mode == "div-com") {
    DivQuery dq;
    dq.sk = q;
    dq.k = k;
    dq.lambda = args.GetDouble("lambda", 0.8, 0.0, 1.0);
    IncrementalSkSearch search(&graph, index.get(), dq.sk, qe, &cli_ctx);
    PairwiseDistanceOracle oracle(&graph, 2.0 * q.delta_max,
                                  OracleStrategy::kSharedExpansion, &cli_ctx);
    oracle.SetQueryEdge(qe);
    const DivSearchOutput out = mode == "div-com"
                                    ? DiversifiedSearchCOM(&search, dq, &oracle)
                                    : DiversifiedSearchSEQ(&search, dq,
                                                           &oracle);
    query_status = out.status;
    std::printf("f(S) = %.4f over %lu candidates%s\n", out.objective,
                static_cast<unsigned long>(out.stats.candidates),
                out.stats.early_terminated ? " (early termination)" : "");
    for (const auto& r : out.selected) {
      std::printf("  object %u  dist %.1f\n", r.id, r.dist);
    }
  } else {
    IncrementalSkSearch search(&graph, index.get(), q, qe, &cli_ctx);
    SkResult r;
    size_t count = 0;
    while (search.Next(&r)) {
      if (count < 20) {
        std::printf("  object %u  dist %.1f\n", r.id, r.dist);
      }
      ++count;
    }
    query_status = search.status();
    if (count > 20) {
      std::printf("  ... and %zu more\n", count - 20);
    }
    std::printf("%zu objects satisfy the query\n", count);
  }
  if (trace_ptr != nullptr) {
    if (!query_status.ok()) {
      trace.MarkError(query_status.code_name());
    }
    trace.CloseSpan(root_span);
  }
  const double query_millis = timer.ElapsedMillis();
  const uint64_t query_reads = disk.stats().reads.load() - reads_before;
  std::printf("query time %.1f ms, %lu page reads, %lu prefetched\n",
              query_millis, static_cast<unsigned long>(query_reads),
              static_cast<unsigned long>(
                  pool.stats().prefetch_issued.load() - prefetched_before));
  if (traced) {
    if (args.Get("trace", "") == "json") {
      std::printf("%s\n", trace.ToJson().c_str());
    } else {
      std::printf("%s", trace.ToText().c_str());
    }
    // Per-phase exclusive totals telescope exactly to the root span; the
    // remaining gap is only root-vs-wall (timer/printf overhead outside
    // the span), reported so drift is visible.
    const obs::TraceSpan& rs = trace.spans()[root_span];
    int64_t phase_ns = 0;
    uint64_t phase_reads = 0;
    for (const auto& t : trace.AggregateByPhase()) {
      phase_ns += t.exclusive_ns;
      phase_reads += t.io.disk_reads;
    }
    std::printf(
        "trace check: phases %.3f ms / root %.3f ms / wall %.3f ms, "
        "phase reads %llu / query reads %llu\n",
        static_cast<double>(phase_ns) / 1e6,
        static_cast<double>(rs.inclusive_ns) / 1e6, query_millis,
        static_cast<unsigned long long>(phase_reads),
        static_cast<unsigned long long>(query_reads));
  }

  // Optional concurrent re-run: the storage layer is concurrent-reader
  // safe, so N workers can hammer the same index and buffer pool.
  const size_t threads = args.GetSize("threads", 1, 1, 1024);
  if (threads > 1) {
    const size_t repeat = args.GetSize("repeat", 64, 1, 1u << 20);
    const double alpha = args.GetDouble("alpha", 0.5, 0.0, 1.0);
    const double lambda = args.GetDouble("lambda", 0.8, 0.0, 1.0);
    ExecutorConfig config;
    config.num_threads = threads;
    QueryExecutor exec(config);
    Timer wall;
    for (size_t i = 0; i < threads * repeat; ++i) {
      exec.SubmitQuery([&graph, &index, &q, &qe, mode, k, alpha,
                        lambda](QueryContext* ctx) {
        if (mode == "knn") {
          std::vector<SkResult> res;
          return BooleanKnnSearch(&graph, index.get(), q, qe, k, &res);
        }
        if (mode == "ranked") {
          RankedQuery rq;
          rq.sk = q;
          rq.k = k;
          rq.alpha = alpha;
          std::vector<RankedResult> res;
          return RankedSkSearch(&graph, index.get(), rq, qe, &res);
        }
        if (mode == "div-seq" || mode == "div-com") {
          DivQuery dq;
          dq.sk = q;
          dq.k = k;
          dq.lambda = lambda;
          IncrementalSkSearch search(&graph, index.get(), dq.sk, qe, ctx);
          PairwiseDistanceOracle oracle(&graph, 2.0 * q.delta_max,
                                        OracleStrategy::kSharedExpansion, ctx);
          oracle.SetQueryEdge(qe);
          const DivSearchOutput out =
              mode == "div-com" ? DiversifiedSearchCOM(&search, dq, &oracle)
                                : DiversifiedSearchSEQ(&search, dq, &oracle);
          return out.status;
        }
        IncrementalSkSearch search(&graph, index.get(), q, qe, ctx);
        SkResult r;
        while (search.Next(&r)) {
        }
        return search.status();
      });
    }
    QueryExecutor::DrainResult drained = exec.Drain();
    const ThroughputMetrics m =
        SummarizeThroughput(threads, wall.ElapsedMillis(),
                            std::move(drained.samples),
                            drained.total_errors());
    std::printf(
        "concurrent rerun: %zu threads, %zu queries, %.1f qps "
        "(p50 %.3f ms, p99 %.3f ms, errors %llu)\n",
        m.num_threads, m.queries, m.qps, m.p50_millis, m.p99_millis,
        static_cast<unsigned long long>(m.errors));
  }
  if (!query_status.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 query_status.ToString().c_str());
    return 1;
  }
  return 0;
}

IndexOptions IndexOptionsByName(const std::string& index_name) {
  IndexOptions opts;
  if (index_name == "ir") {
    opts.kind = IndexKind::kIR;
  } else if (index_name == "if") {
    opts.kind = IndexKind::kIF;
  } else if (index_name == "sifp") {
    opts.kind = IndexKind::kSIFP;
  } else if (index_name == "sifg") {
    opts.kind = IndexKind::kSIFG;
  } else {
    opts.kind = IndexKind::kSIF;
  }
  return opts;
}

int CmdMetrics(const Args& args) {
  // Self-contained: a synthetic database plus a short concurrent workload,
  // so there is traffic behind every exposed counter.
  const double scale = args.GetDouble("scale", 0.03, 1e-6, 1e3);
  CliBackend backend(args);
  Database db(ScalePreset(PresetByName(args.Get("preset", "SYN")), scale),
              backend.options());
  db.BuildIndex(IndexOptionsByName(args.Get("index", "sif")));
  db.PrepareForQueries();

  obs::MetricsRegistry& registry = obs::GlobalMetrics();
  db.BindMetrics(&registry, "db");

  WorkloadConfig wc;
  wc.num_queries = args.GetSize("queries", 32, 1, 1u << 20);
  wc.num_keywords = 2;
  wc.seed = 7;
  const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);
  ExecutorConfig config;
  config.num_threads = args.GetSize("threads", 2, 1, 1024);
  config.metrics = &registry;
  {
    QueryExecutor exec(config);
    for (const WorkloadQuery& wq : wl.queries) {
      const WorkloadQuery* q = &wq;
      exec.SubmitQuery([&db, q](QueryContext* ctx) {
        std::vector<SkResult> results;
        return db.RunSkQuery(q->sk, q->edge, &results, ctx);
      });
    }
    exec.Drain();
  }

  const std::string format = args.Get("format", "json");
  if (format == "prom" || format == "prometheus") {
    std::printf("%s", registry.ToPrometheus().c_str());
  } else {
    std::printf("%s\n", registry.ToJson().c_str());
  }
  db.UnbindMetrics(&registry, "db");
  return 0;
}

int CmdServeStats(const Args& args) {
  // A live telemetry demo and the forerunner of the query-service front
  // end: synthetic database, continuous sampled-traced workload, stats
  // endpoint on loopback.
  const double scale = args.GetDouble("scale", 0.03, 1e-6, 1e3);
  const auto port =
      static_cast<uint16_t>(args.GetSize("port", 0, 0, 65535));
  const size_t threads = args.GetSize("threads", 2, 1, 1024);
  const size_t num_queries = args.GetSize("queries", 64, 1, 1u << 20);
  const auto sample =
      static_cast<uint32_t>(args.GetSize("sample", 16, 0, 1u << 20));
  const double slow_ms = args.GetDouble("slow-ms", 0.0, 0.0, 1e9);
  const size_t duration_ms = args.GetSize("duration-ms", 0, 0, SIZE_MAX);

  CliBackend backend(args);
  Database db(ScalePreset(PresetByName(args.Get("preset", "SYN")), scale),
              backend.options());
  db.BuildIndex(IndexOptionsByName(args.Get("index", "sif")));
  db.PrepareForQueries();

  obs::MetricsRegistry& registry = obs::GlobalMetrics();
  db.BindMetrics(&registry, "db");
  obs::FlightRecorder recorder;
  recorder.set_occupancy_gauge(
      &registry.gauge("dsks.flight_recorder.entries"));
  obs::StatsServer server(&registry, &recorder);
  if (const Status s = server.Start(port); !s.ok()) {
    std::fprintf(stderr, "stats server failed to start: %s\n",
                 s.ToString().c_str());
    db.UnbindMetrics(&registry, "db");
    return 1;
  }
  std::printf("serving stats on http://127.0.0.1:%u "
              "(/metrics /varz /tracez /healthz)\n",
              server.port());
  std::fflush(stdout);

  WorkloadConfig wc;
  wc.num_queries = num_queries;
  wc.num_keywords = 2;
  wc.seed = 7;
  const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);
  ExecutorConfig config;
  config.num_threads = threads;
  config.metrics = &registry;
  config.sampling.sample_every = sample;
  config.sampling.slow_ms = slow_ms;
  config.sampling.seed = 42;
  config.flight_recorder = &recorder;
  uint64_t passes = 0;
  uint64_t sampled = 0;
  Timer total;
  {
    QueryExecutor exec(config);
    for (;;) {
      for (const WorkloadQuery& wq : wl.queries) {
        const WorkloadQuery* q = &wq;
        QueryTag tag;
        tag.kind = "sk";
        tag.terms = static_cast<uint32_t>(q->sk.terms.size());
        exec.SubmitQuery(tag, [&db, q](QueryContext* ctx) {
          std::vector<SkResult> results;
          return db.RunSkQuery(q->sk, q->edge, &results, ctx);
        });
      }
      const QueryExecutor::DrainResult drained = exec.Drain();
      sampled += drained.sampled;
      ++passes;
      if (duration_ms > 0 &&
          total.ElapsedMillis() >= static_cast<double>(duration_ms)) {
        break;
      }
      // Pace the load so an open-ended serve doesn't pin the CPU; scrapes
      // between passes still see live counters.
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  server.Stop();
  std::printf("served %.1f s: %llu workload passes, %llu sampled traces, "
              "%llu recorded\n",
              total.ElapsedMillis() / 1000.0,
              static_cast<unsigned long long>(passes),
              static_cast<unsigned long long>(sampled),
              static_cast<unsigned long long>(recorder.recorded()));
  db.UnbindMetrics(&registry, "db");
  return 0;
}

int CmdChaos(const Args& args) {
  // Survival demonstration: run a concurrent workload with the storage
  // fault injector armed and show that every failure surfaces as a counted
  // Status — the queries fail, the process does not.
  const double scale = args.GetDouble("scale", 0.03, 1e-6, 1e3);
  const double read_fault_p = args.GetDouble("read-fault-p", 0.001, 0.0, 1.0);
  const double write_fault_p = args.GetDouble("write-fault-p", 0.0, 0.0, 1.0);
  const double corrupt_p = args.GetDouble("corrupt-p", 0.0, 0.0, 1.0);
  const uint64_t seed = args.GetSize("seed", 42, 0, SIZE_MAX);
  const size_t retries = args.GetSize("retries", 0, 0, 64);
  const size_t num_queries = args.GetSize("queries", 256, 1, 1u << 20);
  const size_t threads = args.GetSize("threads", 8, 1, 1024);

  CliBackend backend(args);
  Database db(ScalePreset(PresetByName(args.Get("preset", "SYN")), scale),
              backend.options());
  db.BuildIndex(IndexOptionsByName(args.Get("index", "sif")));
  // Shrink the pool *before* arming the injector: preparation flushes, and
  // an injected write fault there would be a setup failure, not a query
  // failure. The small pool then guarantees cold reads during the workload
  // so faults actually have reads to hit.
  db.PrepareForQueries();

  WorkloadConfig wc;
  wc.num_queries = num_queries;
  wc.num_keywords = 2;
  wc.seed = 7;
  const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);

  FaultInjector::Config fc;
  fc.read_fault_p = read_fault_p;
  fc.write_fault_p = write_fault_p;
  fc.corrupt_read_p = corrupt_p;
  fc.seed = seed;
  db.disk()->fault_injector()->Configure(fc);

  ExecutorConfig config;
  config.num_threads = threads;
  config.max_retries = retries;
  ThroughputMetrics m;
  {
    QueryExecutor exec(config);
    Timer wall;
    for (const WorkloadQuery& wq : wl.queries) {
      const WorkloadQuery* q = &wq;
      exec.SubmitQuery([&db, q](QueryContext* ctx) {
        std::vector<SkResult> results;
        return db.RunSkQuery(q->sk, q->edge, &results, ctx);
      });
    }
    QueryExecutor::DrainResult drained = exec.Drain();
    m = SummarizeThroughput(threads, wall.ElapsedMillis(),
                            std::move(drained.samples),
                            drained.total_errors());
    m.errors_by_code = drained.errors;
    m.retries = drained.retries;
  }
  db.disk()->fault_injector()->Disarm();

  std::printf(
      "chaos: %zu queries on %zu threads under read-fault-p=%g "
      "corrupt-p=%g (seed %llu, backend %s, io %s)\n",
      m.queries, m.num_threads, read_fault_p, corrupt_p,
      static_cast<unsigned long long>(seed), backend.name(),
      db.disk()->io_engine_name());
  std::printf("  failed %llu (error rate %.2f%%), retries %llu\n",
              static_cast<unsigned long long>(m.errors),
              100.0 * m.error_rate,
              static_cast<unsigned long long>(m.retries));
  for (size_t c = 0; c < Status::kNumCodes; ++c) {
    if (m.errors_by_code[c] > 0) {
      std::printf("    %-17s %llu\n",
                  Status::CodeName(static_cast<Status::Code>(c)),
                  static_cast<unsigned long long>(m.errors_by_code[c]));
    }
  }
  const FaultInjector::StatsSnapshot fs =
      db.disk()->fault_injector()->stats();
  const DiskStatsSnapshot ds = db.disk()->stats_snapshot();
  std::printf(
      "  injected: %llu read faults, %llu write faults, %llu bit flips\n",
      static_cast<unsigned long long>(fs.read_faults),
      static_cast<unsigned long long>(fs.write_faults),
      static_cast<unsigned long long>(fs.corruptions));
  std::printf("  disk: %llu reads, %llu corruptions detected by checksum\n",
              static_cast<unsigned long long>(ds.reads),
              static_cast<unsigned long long>(ds.corruptions_detected));
  std::printf("survived: every failure above is a Status, not a crash\n");
  return 0;
}

int Main(int argc, char** argv) {
  Args args(argc, argv);
  if (argc < 2) {
    return Usage();
  }
  const std::string cmd = argv[1];
  if (cmd == "generate") {
    return CmdGenerate(args);
  }
  if (cmd == "info") {
    return CmdInfo(args);
  }
  if (cmd == "query") {
    return CmdQuery(args);
  }
  if (cmd == "metrics") {
    return CmdMetrics(args);
  }
  if (cmd == "serve-stats") {
    return CmdServeStats(args);
  }
  if (cmd == "chaos") {
    return CmdChaos(args);
  }
  return Usage();
}

}  // namespace
}  // namespace dsks

int main(int argc, char** argv) { return dsks::Main(argc, argv); }
