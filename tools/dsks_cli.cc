// dsks_cli — command-line front end for the library.
//
//   dsks_cli generate --preset NA|SF|TW|SYN [--scale F] --out FILE
//       Generate a dataset and save it in the DSKS binary format.
//   dsks_cli info FILE
//       Print dataset statistics (Table 2 style).
//   dsks_cli query --data FILE [--index ir|if|sif|sifp|sifg]
//             --terms T1,T2,... [--object-loc ID] [--delta D]
//             [--k K] [--mode boolean|knn|ranked|div-seq|div-com]
//             [--lambda L] [--alpha A] [--threads N] [--repeat R]
//             [--trace [json]]
//       Load a dataset, build the index, run one query. The query point
//       defaults to the location of object --object-loc (default 0).
//       With --threads N > 1, additionally re-runs the query R times
//       (default 64 per thread) on an N-thread QueryExecutor sharing the
//       index and buffer pool, and reports aggregate throughput.
//       --trace records per-phase spans with buffer-pool/disk deltas and
//       prints the span tree (or JSON with `--trace json`).
//   dsks_cli metrics [--scale F] [--index sif] [--queries N] [--threads N]
//             [--format json|prom]
//       Build a synthetic database, run a small concurrent workload, and
//       dump the metrics registry (storage counters bound as live sources
//       plus the executor's latency histogram).
//   dsks_cli serve-stats [--port P] [--scale F] [--index sif] [--threads N]
//             [--queries N] [--sample N] [--slow-ms F] [--duration-ms N]
//       Build a synthetic database, run a continuous sampled-traced
//       workload, and serve live telemetry over HTTP: /metrics
//       (Prometheus), /varz (JSON registry), /tracez (flight recorder),
//       /healthz. --port 0 picks an ephemeral port (printed on stdout);
//       --duration-ms 0 serves until killed.
//   dsks_cli chaos [--scale F] [--index sif] [--queries N] [--threads N]
//             [--read-fault-p P] [--write-fault-p P] [--corrupt-p P]
//             [--seed S] [--retries R] [--socket]
//       Run a concurrent workload with storage fault injection armed and
//       prove the process survives: failed queries are counted per Status
//       code (never aborting), transient read faults optionally retried.
//       With --socket the same drill runs end-to-end through the TCP query
//       server: requests go over loopback as JSON lines and every failure
//       comes back as a Status-coded response.
//   dsks_cli serve [--port P] [--scale F] [--index sif] [--threads N]
//             [--queue N] [--deadline-ms D] [--batch-window-ms W]
//             [--quota-qps Q] [--quota-burst B] [--submit-wait-ms S]
//             [--duration-ms N]
//       Build a synthetic database and serve the NDJSON query protocol
//       plus the observability routes (/metrics /varz /tracez /healthz
//       /statusz) on one loopback listener until SIGINT/SIGTERM (or
//       --duration-ms). --port 0 picks an ephemeral port (printed).
//   dsks_cli drill [--scale F] [--index sif] [--threads N] [--queue N]
//             [--clients N] [--queries N] [--deadline-ms D] [--invalid-p P]
//             [--batch-window-ms W] [--quota-qps Q]
//       Overload drill: an in-process query server hammered over real
//       sockets by N pipelining clients at a multiple of its capacity,
//       with /metrics scraped throughout. Verifies the admission
//       invariants (offered == admitted + shed + invalid + quota_denied,
//       admitted == completed, sheds exactly match rejected submissions)
//       and prints one "bench":"server_drill" JSON line.
#include <csignal>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "datagen/presets.h"
#include "datagen/workload.h"
#include "graph/serialization.h"
#include "harness/database.h"
#include "harness/query_executor.h"
#include "index/inverted_file.h"
#include "index/inverted_rtree.h"
#include "index/sif.h"
#include "index/sif_group.h"
#include "index/sif_partitioned.h"
#include "core/distance_oracle.h"
#include "core/div_search.h"
#include "core/ranked_search.h"
#include "graph/ccam.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "datagen/network_generator.h"
#include "datagen/object_generator.h"
#include "index/query_log.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/stats_server.h"
#include "obs/trace.h"
#include "server/client.h"
#include "server/json.h"
#include "server/query_server.h"

namespace dsks {
namespace {

/// Minimal --flag value parser. Both spellings work: `--flag value` and
/// `--flag=value`. A flag followed by another flag (or by nothing) is
/// boolean — present with an empty value — so `--trace` and `--trace json`
/// both work.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 0; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) == 0) {
        const char* key = argv[i] + 2;
        if (const char* eq = std::strchr(key, '=')) {
          values_[std::string(key, eq - key)] = eq + 1;
        } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
          values_[key] = argv[i + 1];
          ++i;
        } else {
          values_[key] = "";
        }
      } else {
        positional_.emplace_back(argv[i]);
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  /// Checked numeric flags, shared by every subcommand: a present flag
  /// whose value does not parse completely as a number, or falls outside
  /// [min_value, max_value], prints an error and exits with status 2 —
  /// `--threads foo` must not silently become 0.
  double GetDouble(const std::string& key, double fallback, double min_value,
                   double max_value) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    const char* text = it->second.c_str();
    char* end = nullptr;
    const double v = std::strtod(text, &end);
    if (*text == '\0' || end == nullptr || *end != '\0') {
      std::fprintf(stderr, "--%s: '%s' is not a number\n", key.c_str(), text);
      std::exit(2);
    }
    if (!(v >= min_value && v <= max_value)) {
      std::fprintf(stderr, "--%s: %s out of range [%g, %g]\n", key.c_str(),
                   text, min_value, max_value);
      std::exit(2);
    }
    return v;
  }
  size_t GetSize(const std::string& key, size_t fallback, size_t min_value,
                 size_t max_value) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    const char* text = it->second.c_str();
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (*text == '\0' || end == nullptr || *end != '\0' || *text == '-') {
      std::fprintf(stderr, "--%s: '%s' is not a non-negative integer\n",
                   key.c_str(), text);
      std::exit(2);
    }
    if (v < min_value || v > max_value) {
      std::fprintf(stderr, "--%s: %s out of range [%zu, %zu]\n", key.c_str(),
                   text, min_value, max_value);
      std::exit(2);
    }
    return static_cast<size_t>(v);
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  dsks_cli generate --preset NA|SF|TW|SYN [--scale F] "
               "--out FILE\n"
               "  dsks_cli info FILE\n"
               "  dsks_cli query --data FILE [--index sif] --terms 1,2,3\n"
               "           [--object-loc ID] [--delta 1500] [--k 10]\n"
               "           [--mode boolean|knn|ranked|div-seq|div-com]\n"
               "           [--lambda 0.8] [--alpha 0.5]\n"
               "           [--threads 4] [--repeat 64] [--trace [json]]\n"
               "           [--prefetch on|off]\n"
               "  dsks_cli metrics [--scale 0.03] [--index sif]\n"
               "           [--queries 32] [--threads 2]\n"
               "           [--format=json|prometheus]\n"
               "  dsks_cli serve-stats [--port 0] [--scale 0.03] "
               "[--index sif]\n"
               "           [--threads 2] [--queries 64] [--sample 16]\n"
               "           [--slow-ms 0] [--duration-ms 0]\n"
               "  dsks_cli chaos [--scale 0.03] [--index sif] [--queries 256]\n"
               "           [--threads 8] [--read-fault-p 0.001]\n"
               "           [--write-fault-p 0] [--corrupt-p 0] [--seed 42]\n"
               "           [--retries 0] [--socket]\n"
               "  dsks_cli serve [--port 0] [--scale 0.03] [--index sif]\n"
               "           [--threads 4] [--queue 64] [--deadline-ms 0]\n"
               "           [--batch-window-ms 0] [--quota-qps 0]\n"
               "           [--quota-burst 8] [--submit-wait-ms 0]\n"
               "           [--duration-ms 0]\n"
               "  dsks_cli drill [--scale 0.03] [--index sif] [--threads 4]\n"
               "           [--queue 16] [--clients 8] [--queries 64]\n"
               "           [--deadline-ms 0] [--invalid-p 0]\n"
               "           [--batch-window-ms 0] [--quota-qps 0]\n"
               "query/metrics/serve-stats/chaos also accept storage-backend "
               "flags:\n"
               "           [--backend sim|file] [--backend-path PATH]\n"
               "           [--o-direct] [--io sync|async] [--io-depth 64]\n");
  return 2;
}

/// Shared storage-backend flags: `--backend sim|file` selects where pages
/// live, `--backend-path PATH` names the index file (file backend only;
/// defaults to a fresh /tmp file that is removed on exit), `--o-direct`
/// asks the file backend to bypass the OS page cache. `--io async` serves
/// speculative prefetch reads on an asynchronous engine (io_uring when
/// the kernel offers it, a worker pool otherwise) so expansion compute
/// overlaps them; `--io-depth` bounds the pages in flight.
class CliBackend {
 public:
  explicit CliBackend(const Args& args) {
    const std::string name = args.Get("backend", "sim");
    if (name == "file") {
      options_.backend = DiskBackendKind::kFile;
      options_.path = args.Get("backend-path", "");
      if (options_.path.empty()) {
        options_.path =
            "/tmp/dsks_cli_" + std::to_string(::getpid()) + ".pages";
        owns_files_ = true;
      }
      options_.o_direct = args.Has("o-direct");
    } else if (name != "sim") {
      std::fprintf(stderr, "--backend: want 'sim' or 'file', got '%s'\n",
                   name.c_str());
      std::exit(2);
    }
    const std::string io = args.Get("io", "sync");
    if (io == "async") {
      options_.io = IoMode::kAsync;
    } else if (io != "sync") {
      std::fprintf(stderr, "--io: want 'sync' or 'async', got '%s'\n",
                   io.c_str());
      std::exit(2);
    }
    options_.io_depth = args.GetSize("io-depth", 64, 1, 4096);
  }
  ~CliBackend() {
    if (owns_files_) {
      std::remove(options_.path.c_str());
      std::remove((options_.path + ".crc").c_str());
    }
  }

  CliBackend(const CliBackend&) = delete;
  CliBackend& operator=(const CliBackend&) = delete;

  const DiskOptions& options() const { return options_; }
  const char* name() const { return DiskBackendKindName(options_.backend); }

 private:
  DiskOptions options_;
  bool owns_files_ = false;
};

DatasetConfig PresetByName(const std::string& name) {
  for (const DatasetConfig& c : AllPresets()) {
    if (c.name == name) {
      return c;
    }
  }
  std::fprintf(stderr, "unknown preset '%s' (want NA, SF, SYN or TW)\n",
               name.c_str());
  std::exit(2);
}

int CmdGenerate(const Args& args) {
  const std::string out = args.Get("out", "");
  if (out.empty()) {
    return Usage();
  }
  DatasetConfig cfg = PresetByName(args.Get("preset", "SYN"));
  const double scale = args.GetDouble("scale", 1.0, 1e-6, 1e6);
  if (scale != 1.0) {
    cfg = ScalePreset(cfg, scale);
  }
  std::printf("generating %s (scale %.2f)...\n", cfg.name.c_str(), scale);
  auto net = GenerateRoadNetwork(cfg.network);
  auto objects = GenerateObjects(*net, cfg.objects);
  const Status s = SaveDataset(*net, *objects, out);
  if (!s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu nodes, %zu edges, %zu objects\n", out.c_str(),
              net->num_nodes(), net->num_edges(), objects->size());
  return 0;
}

int CmdInfo(const Args& args) {
  if (args.positional().size() < 3) {
    return Usage();
  }
  const std::string path = args.positional()[2];
  std::unique_ptr<RoadNetwork> net;
  std::unique_ptr<ObjectSet> objects;
  const Status s = LoadDataset(path, &net, &objects);
  if (!s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const double avg_kw = static_cast<double>(objects->TotalTermOccurrences()) /
                        static_cast<double>(objects->size());
  std::printf("%s:\n  nodes    %zu\n  edges    %zu\n  objects  %zu\n"
              "  avg keywords/object  %.2f\n",
              path.c_str(), net->num_nodes(), net->num_edges(),
              objects->size(), avg_kw);
  return 0;
}

std::vector<TermId> ParseTerms(const std::string& csv) {
  std::vector<TermId> terms;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) {
      comma = csv.size();
    }
    const std::string token = csv.substr(pos, comma - pos);
    char* end = nullptr;
    const unsigned long long t = std::strtoull(token.c_str(), &end, 10);
    if (token.empty() || end == nullptr || *end != '\0') {
      std::fprintf(stderr, "--terms: '%s' is not a term id\n", token.c_str());
      std::exit(2);
    }
    terms.push_back(static_cast<TermId>(t));
    pos = comma + 1;
  }
  // Sorting and dedup happen again behind the API boundary
  // (NormalizeSkQuery); doing it here just keeps the printed query tidy.
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  return terms;
}

int CmdQuery(const Args& args) {
  const std::string path = args.Get("data", "");
  const std::string terms_csv = args.Get("terms", "");
  if (path.empty() || terms_csv.empty()) {
    return Usage();
  }
  // Loading through the serialization path, then wrapping into a Database
  // would duplicate the dataset; the CLI builds the stack directly.
  std::unique_ptr<RoadNetwork> net;
  std::unique_ptr<ObjectSet> objects;
  Status s = LoadDataset(path, &net, &objects);
  if (!s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  size_t vocab = 0;
  for (const auto& o : objects->objects()) {
    for (TermId t : o.terms) {
      vocab = std::max<size_t>(vocab, t + 1);
    }
  }

  CliBackend backend(args);
  DiskManager disk(backend.options());
  BufferPool pool(&disk, 1u << 16);
  // --prefetch off pins the pool to demand-only reads — the A/B knob for
  // attributing a query's I/O behavior to speculative batching.
  const std::string prefetch = args.Get("prefetch", "on");
  if (prefetch != "on" && prefetch != "off") {
    std::fprintf(stderr, "--prefetch: want 'on' or 'off', got '%s'\n",
                 prefetch.c_str());
    return 2;
  }
  pool.set_prefetch_enabled(prefetch == "on");
  const CcamFile ccam = CcamFileBuilder::Build(*net, &disk);
  CcamGraph graph(&ccam, &pool);

  const std::string index_name = args.Get("index", "sif");
  std::unique_ptr<ObjectIndex> index;
  Timer build_timer;
  if (index_name == "ir") {
    index = std::make_unique<InvertedRTreeIndex>(&pool, *objects, vocab);
  } else if (index_name == "if") {
    index = std::make_unique<InvertedFileIndex>(&pool, *objects, vocab);
  } else if (index_name == "sifp") {
    SifPConfig cfg;
    cfg.log_provider =
        MakeQueryLogProvider(QueryLogMode::kFrequency, {}, 3, 8, 1);
    index =
        std::make_unique<SifPartitionedIndex>(&pool, *objects, vocab, cfg);
  } else if (index_name == "sifg") {
    index = std::make_unique<SifGroupIndex>(&pool, *objects, vocab, 25);
  } else {
    index = std::make_unique<SifIndex>(&pool, *objects, vocab);
  }
  std::printf("built %s in %.0f ms (%.1f MB)\n", index->name().c_str(),
              build_timer.ElapsedMillis(),
              static_cast<double>(index->SizeBytes()) / 1048576.0);

  const auto& anchor = objects->object(static_cast<ObjectId>(
      args.GetSize("object-loc", 0, 0, SIZE_MAX) % objects->size()));
  SkQuery q;
  q.loc = NetworkLocation{anchor.edge, anchor.offset};
  q.terms = ParseTerms(terms_csv);
  q.delta_max = args.GetDouble("delta", 1500.0, 1e-9, 1e12);
  // The API boundary: a malformed query is an error message plus a nonzero
  // exit, never an abort inside the search.
  if (const Status qs = NormalizeSkQuery(&q); !qs.ok()) {
    std::fprintf(stderr, "invalid query: %s\n", qs.ToString().c_str());
    return 2;
  }
  const QueryEdgeInfo qe = MakeQueryEdgeInfo(*net, q.loc);
  const std::string mode = args.Get("mode", "boolean");
  const size_t k = args.GetSize("k", 10, 1, 1u << 20);

  // --trace: per-phase spans with pool/disk counter deltas. knn/ranked run
  // through search paths without a QueryContext, so only their end-to-end
  // root span is recorded; boolean and div modes get the full phase tree.
  const bool traced = args.Has("trace");
  obs::QueryTrace trace;
  obs::QueryTrace* trace_ptr = nullptr;
  QueryContext cli_ctx;
  if (traced) {
    // The trace snapshots the context's per-query attribution counters,
    // charged through the thread-affine account installed below — exact
    // even if other threads shared this pool.
    trace.BindContextIo(&cli_ctx.io);
    trace_ptr = &trace;
  }
  cli_ctx.trace = trace_ptr;
  obs::ScopedIoAccount io_account(&cli_ctx.io);

  const uint64_t reads_before = disk.stats().reads.load();
  const uint64_t prefetched_before = pool.stats().prefetch_issued.load();
  Timer timer;
  uint32_t root_span = 0;
  if (trace_ptr != nullptr) {
    root_span = trace.OpenSpan(obs::Phase::kQuery);
  }
  // A storage error fails the query, not the process: remember it, close
  // the trace normally (its spans are the partial-work account) and exit
  // nonzero at the end.
  Status query_status;
  if (mode == "knn") {
    std::vector<SkResult> res;
    query_status = BooleanKnnSearch(&graph, index.get(), q, qe, k, &res);
    for (const auto& r : res) {
      std::printf("  object %u  dist %.1f\n", r.id, r.dist);
    }
  } else if (mode == "ranked") {
    RankedQuery rq;
    rq.sk = q;
    rq.k = k;
    rq.alpha = args.GetDouble("alpha", 0.5, 0.0, 1.0);
    std::vector<RankedResult> res;
    query_status = RankedSkSearch(&graph, index.get(), rq, qe, &res);
    for (const auto& r : res) {
      std::printf("  object %u  dist %.1f  matched %u/%zu  score %.4f\n",
                  r.id, r.dist, r.matched, q.terms.size(), r.score);
    }
  } else if (mode == "div-seq" || mode == "div-com") {
    DivQuery dq;
    dq.sk = q;
    dq.k = k;
    dq.lambda = args.GetDouble("lambda", 0.8, 0.0, 1.0);
    IncrementalSkSearch search(&graph, index.get(), dq.sk, qe, &cli_ctx);
    PairwiseDistanceOracle oracle(&graph, 2.0 * q.delta_max,
                                  OracleStrategy::kSharedExpansion, &cli_ctx);
    oracle.SetQueryEdge(qe);
    const DivSearchOutput out = mode == "div-com"
                                    ? DiversifiedSearchCOM(&search, dq, &oracle)
                                    : DiversifiedSearchSEQ(&search, dq,
                                                           &oracle);
    query_status = out.status;
    std::printf("f(S) = %.4f over %lu candidates%s\n", out.objective,
                static_cast<unsigned long>(out.stats.candidates),
                out.stats.early_terminated ? " (early termination)" : "");
    for (const auto& r : out.selected) {
      std::printf("  object %u  dist %.1f\n", r.id, r.dist);
    }
  } else {
    IncrementalSkSearch search(&graph, index.get(), q, qe, &cli_ctx);
    SkResult r;
    size_t count = 0;
    while (search.Next(&r)) {
      if (count < 20) {
        std::printf("  object %u  dist %.1f\n", r.id, r.dist);
      }
      ++count;
    }
    query_status = search.status();
    if (count > 20) {
      std::printf("  ... and %zu more\n", count - 20);
    }
    std::printf("%zu objects satisfy the query\n", count);
  }
  if (trace_ptr != nullptr) {
    if (!query_status.ok()) {
      trace.MarkError(query_status.code_name());
    }
    trace.CloseSpan(root_span);
  }
  const double query_millis = timer.ElapsedMillis();
  const uint64_t query_reads = disk.stats().reads.load() - reads_before;
  std::printf("query time %.1f ms, %lu page reads, %lu prefetched\n",
              query_millis, static_cast<unsigned long>(query_reads),
              static_cast<unsigned long>(
                  pool.stats().prefetch_issued.load() - prefetched_before));
  if (traced) {
    if (args.Get("trace", "") == "json") {
      std::printf("%s\n", trace.ToJson().c_str());
    } else {
      std::printf("%s", trace.ToText().c_str());
    }
    // Per-phase exclusive totals telescope exactly to the root span; the
    // remaining gap is only root-vs-wall (timer/printf overhead outside
    // the span), reported so drift is visible.
    const obs::TraceSpan& rs = trace.spans()[root_span];
    int64_t phase_ns = 0;
    uint64_t phase_reads = 0;
    for (const auto& t : trace.AggregateByPhase()) {
      phase_ns += t.exclusive_ns;
      phase_reads += t.io.disk_reads;
    }
    std::printf(
        "trace check: phases %.3f ms / root %.3f ms / wall %.3f ms, "
        "phase reads %llu / query reads %llu\n",
        static_cast<double>(phase_ns) / 1e6,
        static_cast<double>(rs.inclusive_ns) / 1e6, query_millis,
        static_cast<unsigned long long>(phase_reads),
        static_cast<unsigned long long>(query_reads));
  }

  // Optional concurrent re-run: the storage layer is concurrent-reader
  // safe, so N workers can hammer the same index and buffer pool.
  const size_t threads = args.GetSize("threads", 1, 1, 1024);
  if (threads > 1) {
    const size_t repeat = args.GetSize("repeat", 64, 1, 1u << 20);
    const double alpha = args.GetDouble("alpha", 0.5, 0.0, 1.0);
    const double lambda = args.GetDouble("lambda", 0.8, 0.0, 1.0);
    ExecutorConfig config;
    config.num_threads = threads;
    QueryExecutor exec(config);
    Timer wall;
    for (size_t i = 0; i < threads * repeat; ++i) {
      exec.SubmitQuery([&graph, &index, &q, &qe, mode, k, alpha,
                        lambda](QueryContext* ctx) {
        if (mode == "knn") {
          std::vector<SkResult> res;
          return BooleanKnnSearch(&graph, index.get(), q, qe, k, &res);
        }
        if (mode == "ranked") {
          RankedQuery rq;
          rq.sk = q;
          rq.k = k;
          rq.alpha = alpha;
          std::vector<RankedResult> res;
          return RankedSkSearch(&graph, index.get(), rq, qe, &res);
        }
        if (mode == "div-seq" || mode == "div-com") {
          DivQuery dq;
          dq.sk = q;
          dq.k = k;
          dq.lambda = lambda;
          IncrementalSkSearch search(&graph, index.get(), dq.sk, qe, ctx);
          PairwiseDistanceOracle oracle(&graph, 2.0 * q.delta_max,
                                        OracleStrategy::kSharedExpansion, ctx);
          oracle.SetQueryEdge(qe);
          const DivSearchOutput out =
              mode == "div-com" ? DiversifiedSearchCOM(&search, dq, &oracle)
                                : DiversifiedSearchSEQ(&search, dq, &oracle);
          return out.status;
        }
        IncrementalSkSearch search(&graph, index.get(), q, qe, ctx);
        SkResult r;
        while (search.Next(&r)) {
        }
        return search.status();
      });
    }
    QueryExecutor::DrainResult drained = exec.Drain();
    const ThroughputMetrics m =
        SummarizeThroughput(threads, wall.ElapsedMillis(),
                            std::move(drained.samples),
                            drained.total_errors());
    std::printf(
        "concurrent rerun: %zu threads, %zu queries, %.1f qps "
        "(p50 %.3f ms, p99 %.3f ms, errors %llu)\n",
        m.num_threads, m.queries, m.qps, m.p50_millis, m.p99_millis,
        static_cast<unsigned long long>(m.errors));
  }
  if (!query_status.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 query_status.ToString().c_str());
    return 1;
  }
  return 0;
}

IndexOptions IndexOptionsByName(const std::string& index_name) {
  IndexOptions opts;
  if (index_name == "ir") {
    opts.kind = IndexKind::kIR;
  } else if (index_name == "if") {
    opts.kind = IndexKind::kIF;
  } else if (index_name == "sifp") {
    opts.kind = IndexKind::kSIFP;
  } else if (index_name == "sifg") {
    opts.kind = IndexKind::kSIFG;
  } else {
    opts.kind = IndexKind::kSIF;
  }
  return opts;
}

int CmdMetrics(const Args& args) {
  // Self-contained: a synthetic database plus a short concurrent workload,
  // so there is traffic behind every exposed counter.
  const double scale = args.GetDouble("scale", 0.03, 1e-6, 1e3);
  CliBackend backend(args);
  Database db(ScalePreset(PresetByName(args.Get("preset", "SYN")), scale),
              backend.options());
  db.BuildIndex(IndexOptionsByName(args.Get("index", "sif")));
  db.PrepareForQueries();

  obs::MetricsRegistry& registry = obs::GlobalMetrics();
  db.BindMetrics(&registry, "db");

  WorkloadConfig wc;
  wc.num_queries = args.GetSize("queries", 32, 1, 1u << 20);
  wc.num_keywords = 2;
  wc.seed = 7;
  const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);
  ExecutorConfig config;
  config.num_threads = args.GetSize("threads", 2, 1, 1024);
  config.metrics = &registry;
  {
    QueryExecutor exec(config);
    for (const WorkloadQuery& wq : wl.queries) {
      const WorkloadQuery* q = &wq;
      exec.SubmitQuery([&db, q](QueryContext* ctx) {
        std::vector<SkResult> results;
        return db.RunSkQuery(q->sk, q->edge, &results, ctx);
      });
    }
    exec.Drain();
  }

  const std::string format = args.Get("format", "json");
  if (format == "prom" || format == "prometheus") {
    std::printf("%s", registry.ToPrometheus().c_str());
  } else {
    std::printf("%s\n", registry.ToJson().c_str());
  }
  db.UnbindMetrics(&registry, "db");
  return 0;
}

int CmdServeStats(const Args& args) {
  // A live telemetry demo and the forerunner of the query-service front
  // end: synthetic database, continuous sampled-traced workload, stats
  // endpoint on loopback.
  const double scale = args.GetDouble("scale", 0.03, 1e-6, 1e3);
  const auto port =
      static_cast<uint16_t>(args.GetSize("port", 0, 0, 65535));
  const size_t threads = args.GetSize("threads", 2, 1, 1024);
  const size_t num_queries = args.GetSize("queries", 64, 1, 1u << 20);
  const auto sample =
      static_cast<uint32_t>(args.GetSize("sample", 16, 0, 1u << 20));
  const double slow_ms = args.GetDouble("slow-ms", 0.0, 0.0, 1e9);
  const size_t duration_ms = args.GetSize("duration-ms", 0, 0, SIZE_MAX);

  CliBackend backend(args);
  Database db(ScalePreset(PresetByName(args.Get("preset", "SYN")), scale),
              backend.options());
  db.BuildIndex(IndexOptionsByName(args.Get("index", "sif")));
  db.PrepareForQueries();

  obs::MetricsRegistry& registry = obs::GlobalMetrics();
  db.BindMetrics(&registry, "db");
  obs::FlightRecorder recorder;
  recorder.set_occupancy_gauge(
      &registry.gauge("dsks.flight_recorder.entries"));
  obs::StatsServer server(&registry, &recorder);
  if (const Status s = server.Start(port); !s.ok()) {
    std::fprintf(stderr, "stats server failed to start: %s\n",
                 s.ToString().c_str());
    db.UnbindMetrics(&registry, "db");
    return 1;
  }
  std::printf("serving stats on http://127.0.0.1:%u "
              "(/metrics /varz /tracez /healthz)\n",
              server.port());
  std::fflush(stdout);

  WorkloadConfig wc;
  wc.num_queries = num_queries;
  wc.num_keywords = 2;
  wc.seed = 7;
  const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);
  ExecutorConfig config;
  config.num_threads = threads;
  config.metrics = &registry;
  config.sampling.sample_every = sample;
  config.sampling.slow_ms = slow_ms;
  config.sampling.seed = 42;
  config.flight_recorder = &recorder;
  uint64_t passes = 0;
  uint64_t sampled = 0;
  Timer total;
  {
    QueryExecutor exec(config);
    for (;;) {
      for (const WorkloadQuery& wq : wl.queries) {
        const WorkloadQuery* q = &wq;
        QueryTag tag;
        tag.kind = "sk";
        tag.terms = static_cast<uint32_t>(q->sk.terms.size());
        exec.SubmitQuery(tag, [&db, q](QueryContext* ctx) {
          std::vector<SkResult> results;
          return db.RunSkQuery(q->sk, q->edge, &results, ctx);
        });
      }
      const QueryExecutor::DrainResult drained = exec.Drain();
      sampled += drained.sampled;
      ++passes;
      if (duration_ms > 0 &&
          total.ElapsedMillis() >= static_cast<double>(duration_ms)) {
        break;
      }
      // Pace the load so an open-ended serve doesn't pin the CPU; scrapes
      // between passes still see live counters.
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  server.Stop();
  std::printf("served %.1f s: %llu workload passes, %llu sampled traces, "
              "%llu recorded\n",
              total.ElapsedMillis() / 1000.0,
              static_cast<unsigned long long>(passes),
              static_cast<unsigned long long>(sampled),
              static_cast<unsigned long long>(recorder.recorded()));
  db.UnbindMetrics(&registry, "db");
  return 0;
}

/// Renders one workload query as a protocol request line for the socket
/// drills. `invalid` deliberately malforms it (negative delta) to exercise
/// the INVALID_ARGUMENT path end-to-end.
std::string MakeRequestLine(const WorkloadQuery& wq, const std::string& id,
                            double deadline_ms, bool invalid) {
  server::JsonWriter w;
  w.BeginObject();
  w.Key("op").Value("sk");
  w.Key("id").Value(id);
  w.Key("terms").BeginArray();
  for (const TermId t : wq.sk.terms) {
    w.Value(static_cast<uint64_t>(t));
  }
  w.EndArray();
  w.Key("edge").Value(static_cast<uint64_t>(wq.sk.loc.edge));
  w.Key("offset").Value(wq.sk.loc.offset);
  w.Key("delta").Value(invalid ? -1.0 : wq.sk.delta_max);
  if (deadline_ms > 0.0) {
    w.Key("deadline_ms").Value(deadline_ms);
  }
  w.EndObject();
  return w.Take();
}

/// One-shot HTTP GET against the query server's obs routes; returns true
/// when a "200 OK" came back within the timeout.
bool HttpGetOk(uint16_t port, const std::string& path, std::string* body) {
  server::QueryClient raw;
  if (!raw.Connect(port).ok()) {
    return false;
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(raw.fd(), request.data() + sent,
                             request.size() - sent, 0);
    if (n <= 0) {
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  // The server answers Connection: close, so read to EOF.
  std::string response;
  char chunk[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(raw.fd(), chunk, sizeof(chunk), 0);
    if (n <= 0) {
      break;
    }
    response.append(chunk, static_cast<size_t>(n));
  }
  if (response.compare(0, 15, "HTTP/1.1 200 OK") != 0) {
    return false;
  }
  if (body != nullptr) {
    const size_t head_end = response.find("\r\n\r\n");
    *body = head_end == std::string::npos ? "" : response.substr(head_end + 4);
  }
  return true;
}

/// Per-client outcome tally of a socket drill.
struct ClientTally {
  std::map<std::string, uint64_t> by_status;
  uint64_t sent = 0;
  uint64_t received = 0;
  uint64_t transport_errors = 0;
};

/// Sends every line pipelined on one connection, then reads one response
/// per request and tallies the Status codes.
void RunSocketClient(uint16_t port, const std::vector<std::string>& lines,
                     int read_timeout_ms, ClientTally* tally) {
  server::QueryClient client;
  if (!client.Connect(port).ok()) {
    tally->transport_errors += lines.size();
    return;
  }
  for (const std::string& line : lines) {
    if (!client.SendLine(line).ok()) {
      tally->transport_errors += lines.size() - tally->sent;
      return;
    }
    ++tally->sent;
  }
  for (uint64_t i = 0; i < tally->sent; ++i) {
    std::string response;
    if (!client.ReadLine(&response, read_timeout_ms).ok()) {
      ++tally->transport_errors;
      continue;
    }
    ++tally->received;
    server::JsonValue doc;
    const server::JsonValue* status = nullptr;
    if (server::JsonValue::Parse(response, &doc).ok()) {
      status = doc.Find("status");
    }
    if (status != nullptr && status->is_string()) {
      ++tally->by_status[status->string_value()];
    } else {
      ++tally->by_status["<unparseable>"];
    }
  }
}

volatile std::sig_atomic_t g_stop_serve = 0;
void OnStopSignal(int) { g_stop_serve = 1; }

int CmdServe(const Args& args) {
  const double scale = args.GetDouble("scale", 0.03, 1e-6, 1e3);
  const auto port = static_cast<uint16_t>(args.GetSize("port", 0, 0, 65535));
  const size_t duration_ms = args.GetSize("duration-ms", 0, 0, SIZE_MAX);

  CliBackend backend(args);
  Database db(ScalePreset(PresetByName(args.Get("preset", "SYN")), scale),
              backend.options());
  db.BuildIndex(IndexOptionsByName(args.Get("index", "sif")));
  db.PrepareForQueries();

  obs::MetricsRegistry& registry = obs::GlobalMetrics();
  db.BindMetrics(&registry, "db");
  obs::FlightRecorder recorder;
  recorder.set_occupancy_gauge(&registry.gauge("dsks.flight_recorder.entries"));

  server::ServerConfig sc;
  sc.service.threads = args.GetSize("threads", 4, 1, 1024);
  sc.service.queue_capacity = args.GetSize("queue", 64, 1, 1u << 20);
  sc.service.default_deadline_ms =
      args.GetDouble("deadline-ms", 0.0, 0.0, 1e9);
  sc.service.batch_window_ms =
      args.GetDouble("batch-window-ms", 0.0, 0.0, 1e6);
  sc.service.submit_wait_ms = args.GetDouble("submit-wait-ms", 0.0, 0.0, 1e6);
  sc.service.quota.rate_qps = args.GetDouble("quota-qps", 0.0, 0.0, 1e9);
  sc.service.quota.burst = args.GetDouble("quota-burst", 8.0, 1.0, 1e9);
  sc.service.metrics = &registry;
  sc.service.flight_recorder = &recorder;
  sc.service.sampling.sample_every =
      static_cast<uint32_t>(args.GetSize("sample", 0, 0, 1u << 20));

  server::QueryServer server(&db, sc);
  if (const Status s = server.Start(port); !s.ok()) {
    std::fprintf(stderr, "query server failed to start: %s\n",
                 s.ToString().c_str());
    db.UnbindMetrics(&registry, "db");
    return 1;
  }
  std::printf("serving queries on 127.0.0.1:%u (NDJSON; GET /metrics /varz "
              "/tracez /healthz /statusz)\n",
              server.port());
  std::printf("example: {\"op\":\"sk\",\"terms\":[1,2],\"edge\":0,"
              "\"offset\":0,\"delta\":1000}\n");
  std::fflush(stdout);

  std::signal(SIGINT, OnStopSignal);
  std::signal(SIGTERM, OnStopSignal);
  Timer total;
  while (g_stop_serve == 0 &&
         (duration_ms == 0 ||
          total.ElapsedMillis() < static_cast<double>(duration_ms))) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const server::ServiceCounters c = server.counters();
  server.Stop();
  std::printf("served %.1f s: %llu requests (%llu admitted, %llu shed, "
              "%llu invalid, %llu quota-denied, %llu cancelled)\n",
              total.ElapsedMillis() / 1000.0,
              static_cast<unsigned long long>(c.requests),
              static_cast<unsigned long long>(c.admitted),
              static_cast<unsigned long long>(c.shed),
              static_cast<unsigned long long>(c.invalid),
              static_cast<unsigned long long>(c.quota_denied),
              static_cast<unsigned long long>(c.cancelled));
  db.UnbindMetrics(&registry, "db");
  return 0;
}

int CmdDrill(const Args& args) {
  // Overload acceptance drill: hammer an in-process server over real
  // sockets at a multiple of its capacity and verify the admission
  // arithmetic is exact — no aborts, no lost requests, no double counts.
  const double scale = args.GetDouble("scale", 0.03, 1e-6, 1e3);
  const size_t threads = args.GetSize("threads", 4, 1, 1024);
  const size_t queue = args.GetSize("queue", 16, 1, 1u << 20);
  const size_t clients = args.GetSize("clients", 8, 1, 256);
  const size_t queries_per_client = args.GetSize("queries", 64, 1, 1u << 20);
  const double deadline_ms = args.GetDouble("deadline-ms", 0.0, 0.0, 1e9);
  const double invalid_p = args.GetDouble("invalid-p", 0.0, 0.0, 1.0);
  const double batch_window_ms =
      args.GetDouble("batch-window-ms", 0.0, 0.0, 1e6);
  const double quota_qps = args.GetDouble("quota-qps", 0.0, 0.0, 1e9);

  CliBackend backend(args);
  Database db(ScalePreset(PresetByName(args.Get("preset", "SYN")), scale),
              backend.options());
  db.BuildIndex(IndexOptionsByName(args.Get("index", "sif")));
  db.PrepareForQueries();

  obs::MetricsRegistry registry;
  server::ServerConfig sc;
  sc.service.threads = threads;
  sc.service.queue_capacity = queue;
  sc.service.default_deadline_ms = deadline_ms;
  sc.service.batch_window_ms = batch_window_ms;
  sc.service.quota.rate_qps = quota_qps;
  sc.service.metrics = &registry;
  server::QueryServer server(&db, sc);
  if (const Status s = server.Start(0); !s.ok()) {
    std::fprintf(stderr, "drill server failed to start: %s\n",
                 s.ToString().c_str());
    return 1;
  }

  WorkloadConfig wc;
  wc.num_queries = queries_per_client;
  wc.num_keywords = 2;
  wc.seed = 7;
  const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);
  Random rng(13);
  std::vector<std::vector<std::string>> lines(clients);
  for (size_t c = 0; c < clients; ++c) {
    for (size_t i = 0; i < queries_per_client; ++i) {
      const bool invalid = rng.NextDouble() < invalid_p;
      lines[c].push_back(MakeRequestLine(
          wl.queries[i], "c" + std::to_string(c) + "-" + std::to_string(i),
          deadline_ms, invalid));
    }
  }

  // Scrape /metrics continuously while the drill runs: the acceptance bar
  // is that observability stays up under overload.
  std::atomic<bool> drill_done{false};
  std::atomic<uint64_t> scrapes_ok{0}, scrapes_failed{0};
  std::thread scraper([&] {
    while (!drill_done.load(std::memory_order_acquire)) {
      if (HttpGetOk(server.port(), "/metrics", nullptr)) {
        scrapes_ok.fetch_add(1, std::memory_order_relaxed);
      } else {
        scrapes_failed.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  Timer wall;
  std::vector<ClientTally> tallies(clients);
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      RunSocketClient(server.port(), lines[c], /*read_timeout_ms=*/60000,
                      &tallies[c]);
    });
  }
  for (std::thread& t : workers) {
    t.join();
  }
  const double wall_ms = wall.ElapsedMillis();
  drill_done.store(true, std::memory_order_release);
  scraper.join();

  const server::ServiceCounters sv = server.counters();
  server.Stop();

  ClientTally total;
  for (const ClientTally& t : tallies) {
    total.sent += t.sent;
    total.received += t.received;
    total.transport_errors += t.transport_errors;
    for (const auto& [status, n] : t.by_status) {
      total.by_status[status] += n;
    }
  }
  const uint64_t client_ok = total.by_status["OK"];
  const uint64_t client_cancelled = total.by_status["CANCELLED"];
  const uint64_t client_rejected = total.by_status["RESOURCE_EXHAUSTED"];
  const uint64_t client_invalid = total.by_status["INVALID_ARGUMENT"];

  // The admission invariants this drill exists to enforce.
  bool ok = true;
  const auto check = [&ok](bool cond, const char* what) {
    if (!cond) {
      std::fprintf(stderr, "drill INVARIANT VIOLATED: %s\n", what);
      ok = false;
    }
  };
  check(sv.requests == sv.invalid + sv.quota_denied + sv.shed + sv.admitted,
        "requests == invalid + quota_denied + shed + admitted");
  check(sv.admitted == sv.completed, "admitted == completed after drain");
  check(sv.requests == total.sent - total.transport_errors ||
            total.transport_errors > 0,
        "server saw every sent request");
  check(client_rejected == sv.shed + sv.quota_denied,
        "client RESOURCE_EXHAUSTED == server shed + quota_denied");
  check(client_invalid == sv.invalid,
        "client INVALID_ARGUMENT == server invalid");
  check(total.received == total.sent - total.transport_errors,
        "one response per request");
  check(scrapes_ok.load() > 0 && scrapes_failed.load() == 0,
        "/metrics scrapeable throughout");

  server::JsonWriter w;
  w.BeginObject();
  w.Key("bench").Value("server_drill");
  w.Key("server_clients").Value(static_cast<uint64_t>(clients));
  w.Key("server_threads").Value(static_cast<uint64_t>(threads));
  w.Key("server_queue").Value(static_cast<uint64_t>(queue));
  w.Key("server_offered").Value(sv.requests);
  w.Key("server_admitted").Value(sv.admitted);
  w.Key("server_completed").Value(sv.completed);
  w.Key("server_shed").Value(sv.shed);
  w.Key("server_invalid").Value(sv.invalid);
  w.Key("server_quota_denied").Value(sv.quota_denied);
  w.Key("server_cancelled").Value(sv.cancelled);
  w.Key("server_batches").Value(sv.batches);
  w.Key("server_batched_queries").Value(sv.batched_queries);
  w.Key("server_client_ok").Value(client_ok);
  w.Key("server_client_cancelled").Value(client_cancelled);
  w.Key("server_client_rejected").Value(client_rejected);
  w.Key("server_transport_errors").Value(total.transport_errors);
  w.Key("server_scrapes_ok").Value(scrapes_ok.load());
  w.Key("server_scrapes_failed").Value(scrapes_failed.load());
  w.Key("server_wall_ms").Value(wall_ms);
  w.Key("server_qps").Value(
      wall_ms > 0.0 ? 1000.0 * static_cast<double>(sv.completed) / wall_ms
                    : 0.0);
  w.Key("server_invariants_ok").Value(ok);
  w.EndObject();
  std::printf("%s\n", w.str().c_str());
  return ok ? 0 : 1;
}

int CmdChaos(const Args& args) {
  // Survival demonstration: run a concurrent workload with the storage
  // fault injector armed and show that every failure surfaces as a counted
  // Status — the queries fail, the process does not.
  const double scale = args.GetDouble("scale", 0.03, 1e-6, 1e3);
  const double read_fault_p = args.GetDouble("read-fault-p", 0.001, 0.0, 1.0);
  const double write_fault_p = args.GetDouble("write-fault-p", 0.0, 0.0, 1.0);
  const double corrupt_p = args.GetDouble("corrupt-p", 0.0, 0.0, 1.0);
  const uint64_t seed = args.GetSize("seed", 42, 0, SIZE_MAX);
  const size_t retries = args.GetSize("retries", 0, 0, 64);
  const size_t num_queries = args.GetSize("queries", 256, 1, 1u << 20);
  const size_t threads = args.GetSize("threads", 8, 1, 1024);

  CliBackend backend(args);
  Database db(ScalePreset(PresetByName(args.Get("preset", "SYN")), scale),
              backend.options());
  db.BuildIndex(IndexOptionsByName(args.Get("index", "sif")));
  // Shrink the pool *before* arming the injector: preparation flushes, and
  // an injected write fault there would be a setup failure, not a query
  // failure. The small pool then guarantees cold reads during the workload
  // so faults actually have reads to hit.
  db.PrepareForQueries();

  WorkloadConfig wc;
  wc.num_queries = num_queries;
  wc.num_keywords = 2;
  wc.seed = 7;
  const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);

  FaultInjector::Config fc;
  fc.read_fault_p = read_fault_p;
  fc.write_fault_p = write_fault_p;
  fc.corrupt_read_p = corrupt_p;
  fc.seed = seed;
  db.disk()->fault_injector()->Configure(fc);

  if (args.Has("socket")) {
    // End-to-end drill: the same fault-injected workload, but every query
    // travels over a real TCP connection through the query server. The
    // survival property becomes visible at the protocol level — each
    // injected fault answers as a Status-coded JSON response and the
    // server keeps serving.
    obs::MetricsRegistry registry;
    server::ServerConfig sc;
    sc.service.threads = threads;
    sc.service.queue_capacity = num_queries;  // chaos probes faults, not sheds
    sc.service.max_retries = retries;
    sc.service.metrics = &registry;
    server::QueryServer server(&db, sc);
    if (const Status s = server.Start(0); !s.ok()) {
      std::fprintf(stderr, "chaos server failed to start: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    const size_t num_clients = std::min<size_t>(threads, 8);
    std::vector<std::vector<std::string>> lines(num_clients);
    for (size_t i = 0; i < wl.queries.size(); ++i) {
      lines[i % num_clients].push_back(MakeRequestLine(
          wl.queries[i], "q" + std::to_string(i), /*deadline_ms=*/0.0,
          /*invalid=*/false));
    }
    std::vector<ClientTally> tallies(num_clients);
    std::vector<std::thread> workers;
    for (size_t c = 0; c < num_clients; ++c) {
      workers.emplace_back([&, c] {
        RunSocketClient(server.port(), lines[c], /*read_timeout_ms=*/120000,
                        &tallies[c]);
      });
    }
    for (std::thread& t : workers) {
      t.join();
    }
    const server::ServiceCounters sv = server.counters();
    server.Stop();
    db.disk()->fault_injector()->Disarm();

    ClientTally total;
    for (const ClientTally& t : tallies) {
      total.sent += t.sent;
      total.received += t.received;
      total.transport_errors += t.transport_errors;
      for (const auto& [status, n] : t.by_status) {
        total.by_status[status] += n;
      }
    }
    std::printf(
        "chaos --socket: %llu requests over %zu connections, %zu server "
        "threads, read-fault-p=%g corrupt-p=%g (seed %llu, backend %s)\n",
        static_cast<unsigned long long>(total.sent), num_clients, threads,
        read_fault_p, corrupt_p, static_cast<unsigned long long>(seed),
        backend.name());
    for (const auto& [status, n] : total.by_status) {
      std::printf("    %-17s %llu\n", status.c_str(),
                  static_cast<unsigned long long>(n));
    }
    std::printf("  server: %llu admitted, %llu completed, %llu shed; "
                "transport errors %llu\n",
                static_cast<unsigned long long>(sv.admitted),
                static_cast<unsigned long long>(sv.completed),
                static_cast<unsigned long long>(sv.shed),
                static_cast<unsigned long long>(total.transport_errors));
    const bool survived =
        total.received == total.sent && sv.admitted == sv.completed;
    std::printf("%s\n", survived
                            ? "survived: every failure above is a Status "
                              "response, not a crash"
                            : "FAILED: lost responses or admission leak");
    return survived ? 0 : 1;
  }

  ExecutorConfig config;
  config.num_threads = threads;
  config.max_retries = retries;
  ThroughputMetrics m;
  {
    QueryExecutor exec(config);
    Timer wall;
    for (const WorkloadQuery& wq : wl.queries) {
      const WorkloadQuery* q = &wq;
      exec.SubmitQuery([&db, q](QueryContext* ctx) {
        std::vector<SkResult> results;
        return db.RunSkQuery(q->sk, q->edge, &results, ctx);
      });
    }
    QueryExecutor::DrainResult drained = exec.Drain();
    m = SummarizeThroughput(threads, wall.ElapsedMillis(),
                            std::move(drained.samples),
                            drained.total_errors());
    m.errors_by_code = drained.errors;
    m.retries = drained.retries;
  }
  db.disk()->fault_injector()->Disarm();

  std::printf(
      "chaos: %zu queries on %zu threads under read-fault-p=%g "
      "corrupt-p=%g (seed %llu, backend %s, io %s)\n",
      m.queries, m.num_threads, read_fault_p, corrupt_p,
      static_cast<unsigned long long>(seed), backend.name(),
      db.disk()->io_engine_name());
  std::printf("  failed %llu (error rate %.2f%%), retries %llu\n",
              static_cast<unsigned long long>(m.errors),
              100.0 * m.error_rate,
              static_cast<unsigned long long>(m.retries));
  for (size_t c = 0; c < Status::kNumCodes; ++c) {
    if (m.errors_by_code[c] > 0) {
      std::printf("    %-17s %llu\n",
                  Status::CodeName(static_cast<Status::Code>(c)),
                  static_cast<unsigned long long>(m.errors_by_code[c]));
    }
  }
  const FaultInjector::StatsSnapshot fs =
      db.disk()->fault_injector()->stats();
  const DiskStatsSnapshot ds = db.disk()->stats_snapshot();
  std::printf(
      "  injected: %llu read faults, %llu write faults, %llu bit flips\n",
      static_cast<unsigned long long>(fs.read_faults),
      static_cast<unsigned long long>(fs.write_faults),
      static_cast<unsigned long long>(fs.corruptions));
  std::printf("  disk: %llu reads, %llu corruptions detected by checksum\n",
              static_cast<unsigned long long>(ds.reads),
              static_cast<unsigned long long>(ds.corruptions_detected));
  std::printf("survived: every failure above is a Status, not a crash\n");
  return 0;
}

int Main(int argc, char** argv) {
  Args args(argc, argv);
  if (argc < 2) {
    return Usage();
  }
  const std::string cmd = argv[1];
  if (cmd == "generate") {
    return CmdGenerate(args);
  }
  if (cmd == "info") {
    return CmdInfo(args);
  }
  if (cmd == "query") {
    return CmdQuery(args);
  }
  if (cmd == "metrics") {
    return CmdMetrics(args);
  }
  if (cmd == "serve-stats") {
    return CmdServeStats(args);
  }
  if (cmd == "chaos") {
    return CmdChaos(args);
  }
  if (cmd == "serve") {
    return CmdServe(args);
  }
  if (cmd == "drill") {
    return CmdDrill(args);
  }
  return Usage();
}

}  // namespace
}  // namespace dsks

int main(int argc, char** argv) { return dsks::Main(argc, argv); }
