#!/usr/bin/env python3
"""Perf smoke gate: compares bench_throughput output against the committed
baseline and exits non-zero when single-thread qps regressed by more than
the allowed fraction (default 25%).

Usage: perf_gate.py <baseline.json> <smoke.jsonl>

<smoke.jsonl> holds one bench_throughput JSON record per line (the "JSON "
prefix already stripped), possibly from several repeated runs; the gate
scores each workload by its best run so that scheduler noise on small
machines cannot fail the check by itself.
"""

import json
import sys

TOLERANCE = 0.75  # fail when qps < TOLERANCE * baseline


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as f:
        baseline = json.load(f)["qps"]
    best: dict[str, float] = {}
    with open(sys.argv[2], encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("threads") != 1:
                continue
            wl = rec["workload"]
            best[wl] = max(best.get(wl, 0.0), rec["qps"])

    failed = False
    for wl, base_qps in baseline.items():
        got = best.get(wl)
        if got is None:
            print(f"perf gate: no threads=1 measurement for workload '{wl}'")
            failed = True
            continue
        floor = TOLERANCE * base_qps
        verdict = "OK" if got >= floor else "FAIL"
        print(
            f"perf gate: {wl}: {got:.1f} qps vs baseline {base_qps:.1f} "
            f"(floor {floor:.1f}) -> {verdict}"
        )
        if got < floor:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
