#!/usr/bin/env python3
"""Perf smoke gate and bench/metrics JSON validation.

Usage:
  perf_gate.py <baseline.json> <smoke.jsonl>
      Compare bench_throughput output against the committed baseline; exit
      non-zero when single-thread qps regressed by more than the allowed
      fraction (default 25%). <smoke.jsonl> holds one bench_throughput JSON
      record per line (the "JSON " prefix already stripped), possibly from
      several repeated runs; the gate scores each workload by its best run
      so that scheduler noise on small machines cannot fail the check.

  perf_gate.py validate-bench <BENCH_throughput.json>
      Validate the bench artifact (a JSON array): every measurement record
      must carry the full latency block including the merged-histogram
      fields, and at least one per-phase profile record must be present.

  perf_gate.py validate-metrics <metrics.json>
      Validate `dsks_cli metrics` output: all four registry sections, the
      executor's pooled latency histogram, and live db.pool.* / db.disk.*
      sources must be present.

  perf_gate.py validate-server <drill.json>
      Validate a `dsks_cli drill` "server_drill" record: every server_*
      field present with the right type, and the admission arithmetic
      exact — offered == admitted + shed + invalid + quota_denied,
      admitted == completed, /metrics scrapeable throughout, and the
      drill's own invariant verdict true.

  perf_gate.py overhead <off.jsonl> <on.jsonl>
      Tracing-overhead gate: compare single-thread qps of a sampled run
      (sample_rate > 0 on every warm record) against an unsampled run of
      the same workloads, best-of per workload on both sides. Fails when
      the sampled side is below OVERHEAD_TOLERANCE of the unsampled side —
      i.e. when 1-in-N tracing costs more than the perf-gate noise band.
"""

import json
import sys

TOLERANCE = 0.75  # fail when qps < TOLERANCE * baseline
# The overhead gate compares two fresh runs on the same machine moments
# apart, so it can be tighter than the committed-baseline gate — but
# best-of-3 qps on a small shared box still jitters, hence not 0.95.
OVERHEAD_TOLERANCE = 0.85

# --- tiny schema validator ---------------------------------------------------
# Supported keys: "type" ("object"|"array"|"number"|"integer"|"string"),
# "required" (dict of name -> sub-schema for objects), "items" (sub-schema
# applied to every array element / every object value), "min" (numbers).
# Deliberately hand-rolled: the container has no jsonschema package.


def validate(value, schema, path="$"):
    """Returns a list of error strings (empty when valid)."""
    errors = []
    t = schema.get("type")
    if t == "object":
        if not isinstance(value, dict):
            return [f"{path}: expected object, got {type(value).__name__}"]
        for name, sub in schema.get("required", {}).items():
            if name not in value:
                errors.append(f"{path}: missing required key '{name}'")
            else:
                errors += validate(value[name], sub, f"{path}.{name}")
        if "items" in schema:
            for name, item in value.items():
                errors += validate(item, schema["items"], f"{path}.{name}")
    elif t == "array":
        if not isinstance(value, list):
            return [f"{path}: expected array, got {type(value).__name__}"]
        for i, item in enumerate(value):
            errors += validate(item, schema.get("items", {}), f"{path}[{i}]")
    elif t == "number":
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return [f"{path}: expected number, got {type(value).__name__}"]
        if "min" in schema and value < schema["min"]:
            errors.append(f"{path}: {value} below minimum {schema['min']}")
    elif t == "integer":
        if not isinstance(value, int) or isinstance(value, bool):
            return [f"{path}: expected integer, got {type(value).__name__}"]
        if "min" in schema and value < schema["min"]:
            errors.append(f"{path}: {value} below minimum {schema['min']}")
    elif t == "string":
        if not isinstance(value, str):
            return [f"{path}: expected string, got {type(value).__name__}"]
    return errors


NUM = {"type": "number", "min": 0}

MEASUREMENT_SCHEMA = {
    "type": "object",
    "required": {
        "bench": {"type": "string"},
        # which storage backend served the pages ("sim" or "file"): numbers
        # from different backends are different experiments and must never
        # be pooled, so every record has to say which one it came from
        "backend": {"type": "string"},
        # I/O regime speculative reads ran under ("sync" or "async"): an
        # async run overlaps prefetch completions with compute, so its
        # numbers are a different experiment from sync ones — same
        # never-pool rule as the backend
        "io": {"type": "string"},
        "workload": {"type": "string"},
        # cache regime: 1 when the pool was cleared before every query
        # (cold-cache A/B runs), 0 for the steady-state warm series. The
        # perf gate refuses to grade one regime against the other.
        "cold": {"type": "integer", "min": 0},
        # 1 when speculative prefetching was enabled for the run; cold
        # records come in off/on pairs so the miss reduction is auditable
        "prefetch": {"type": "integer", "min": 0},
        "threads": {"type": "integer", "min": 1},
        "queries": {"type": "integer", "min": 1},
        "wall_ms": NUM,
        "qps": NUM,
        "avg_ms": NUM,
        "p50_ms": NUM,
        "p95_ms": NUM,
        "p99_ms": NUM,
        "speedup": NUM,
        # error accounting: benches run fault-free, so these must be zero
        # (checked separately in validate_bench, not just present)
        "errors": {"type": "integer", "min": 0},
        "error_rate": NUM,
        # merged per-worker histogram fields (interpolated within buckets)
        "hist_count": {"type": "integer", "min": 1},
        "hist_p50_ms": NUM,
        "hist_p99_ms": NUM,
        # sampled-tracing regime of the run: 1-in-N (0 = tracing off) and
        # how many queries actually ran traced. Present on every record so
        # a sampled run can never masquerade as an unsampled baseline.
        "sample_rate": {"type": "integer", "min": 0},
        "sampled_queries": {"type": "integer", "min": 0},
    },
}

PHASE_PROFILE_SCHEMA = {
    "type": "object",
    "required": {
        "bench": {"type": "string"},
        "backend": {"type": "string"},
        "workload": {"type": "string"},
        "queries": {"type": "integer", "min": 1},
        "phase_profile": {
            "type": "object",
            "items": {
                "type": "object",
                "required": {
                    "spans": {"type": "integer", "min": 1},
                    "ms": NUM,
                    "pool_hits": {"type": "integer", "min": 0},
                    "pool_misses": {"type": "integer", "min": 0},
                    "disk_reads": {"type": "integer", "min": 0},
                    "prefetched_pages": {"type": "integer", "min": 0},
                },
            },
        },
    },
}

HISTOGRAM_SCHEMA = {
    "type": "object",
    "required": {
        "count": {"type": "integer", "min": 0},
        "sum_ms": NUM,
        "min_ms": NUM,
        "max_ms": NUM,
        "avg_ms": NUM,
        "p50_ms": NUM,
        "p95_ms": NUM,
        "p99_ms": NUM,
    },
}

METRICS_SCHEMA = {
    "type": "object",
    "required": {
        "counters": {"type": "object", "items": {"type": "integer", "min": 0}},
        "gauges": {"type": "object", "items": {"type": "number"}},
        "sources": {"type": "object", "items": {"type": "integer", "min": 0}},
        "histograms": {"type": "object", "items": HISTOGRAM_SCHEMA},
    },
}


INT = {"type": "integer", "min": 0}

SERVER_DRILL_SCHEMA = {
    "type": "object",
    "required": {
        "bench": {"type": "string"},
        "server_clients": {"type": "integer", "min": 1},
        "server_threads": {"type": "integer", "min": 1},
        "server_queue": {"type": "integer", "min": 1},
        "server_offered": INT,
        "server_admitted": INT,
        "server_completed": INT,
        "server_shed": INT,
        "server_invalid": INT,
        "server_quota_denied": INT,
        "server_cancelled": INT,
        "server_batches": INT,
        "server_batched_queries": INT,
        "server_client_ok": INT,
        "server_client_cancelled": INT,
        "server_client_rejected": INT,
        "server_transport_errors": INT,
        "server_scrapes_ok": INT,
        "server_scrapes_failed": INT,
        "server_wall_ms": NUM,
        "server_qps": NUM,
    },
}


def report(label, errors):
    if errors:
        for e in errors:
            print(f"{label}: {e}")
        return 1
    print(f"{label}: OK")
    return 0


def validate_bench(path) -> int:
    with open(path, encoding="utf-8") as f:
        records = json.load(f)
    errors = validate(records, {"type": "array"}, "$")
    if errors:
        return report(f"validate-bench {path}", errors)
    profiles = 0
    for i, rec in enumerate(records):
        if isinstance(rec, dict) and "phase_profile" in rec:
            profiles += 1
            errors += validate(rec, PHASE_PROFILE_SCHEMA, f"$[{i}]")
            # the root phase must be present so phase shares have a total
            if "query" not in rec.get("phase_profile", {}):
                errors.append(f"$[{i}].phase_profile: missing 'query' root phase")
        else:
            errors += validate(rec, MEASUREMENT_SCHEMA, f"$[{i}]")
            # Benches run with fault injection off; a failed query there
            # means the error accounting (or the storage layer) is broken.
            if rec.get("errors", 0) != 0:
                errors.append(
                    f"$[{i}]: fault-free bench reports {rec['errors']} errors"
                )
            if rec.get("error_rate", 0) != 0:
                errors.append(
                    f"$[{i}]: fault-free bench reports error_rate "
                    f"{rec['error_rate']}"
                )
            # Cold records exist to audit the prefetch miss reduction, so
            # they must carry the counters that reduction is computed from.
            if rec.get("cold") == 1:
                for key in (
                    "pool_misses",
                    "disk_reads",
                    "prefetch_issued",
                    "prefetch_hits",
                    "prefetch_wasted",
                    "prefetch_dropped",
                ):
                    if key not in rec:
                        errors.append(f"$[{i}]: cold record missing '{key}'")
                    else:
                        errors += validate(
                            rec[key],
                            {"type": "integer", "min": 0},
                            f"$[{i}].{key}",
                        )
    if profiles == 0:
        errors.append("$: no phase_profile record found")
    return report(f"validate-bench {path} ({len(records)} records)", errors)


def validate_metrics(path) -> int:
    with open(path, encoding="utf-8") as f:
        metrics = json.load(f)
    errors = validate(metrics, METRICS_SCHEMA, "$")
    if not errors:
        sources = metrics["sources"]
        for prefix in ("db.pool.", "db.disk."):
            if not any(k.startswith(prefix) for k in sources):
                errors.append(f"$.sources: no key with prefix '{prefix}'")
        if "executor.query_ms" not in metrics["histograms"]:
            errors.append("$.histograms: missing 'executor.query_ms'")
        if "executor.queries" not in metrics["counters"]:
            errors.append("$.counters: missing 'executor.queries'")
    return report(f"validate-metrics {path}", errors)


def validate_server(path) -> int:
    with open(path, encoding="utf-8") as f:
        rec = json.load(f)
    errors = validate(rec, SERVER_DRILL_SCHEMA, "$")
    if not errors:
        if rec["bench"] != "server_drill":
            errors.append(f"$.bench: expected 'server_drill', got {rec['bench']!r}")
        # The admission arithmetic must be exact, not approximate: every
        # offered request is accounted exactly once, and every admitted
        # query produced a completion.
        offered = rec["server_offered"]
        accounted = (
            rec["server_admitted"]
            + rec["server_shed"]
            + rec["server_invalid"]
            + rec["server_quota_denied"]
        )
        if offered != accounted:
            errors.append(
                f"$: offered {offered} != admitted + shed + invalid + "
                f"quota_denied = {accounted}"
            )
        if rec["server_admitted"] != rec["server_completed"]:
            errors.append(
                f"$: admitted {rec['server_admitted']} != completed "
                f"{rec['server_completed']} — queries were lost"
            )
        if rec["server_client_rejected"] != (
            rec["server_shed"] + rec["server_quota_denied"]
        ):
            errors.append(
                f"$: client RESOURCE_EXHAUSTED {rec['server_client_rejected']} "
                f"!= shed + quota_denied"
            )
        if rec["server_scrapes_ok"] < 1 or rec["server_scrapes_failed"] != 0:
            errors.append(
                f"$: /metrics not scrapeable throughout "
                f"(ok {rec['server_scrapes_ok']}, "
                f"failed {rec['server_scrapes_failed']})"
            )
        if rec.get("server_invariants_ok") is not True:
            errors.append("$: server_invariants_ok is not true")
    return report(f"validate-server {path}", errors)


def perf_gate(baseline_path, smoke_path) -> int:
    with open(baseline_path, encoding="utf-8") as f:
        baseline_doc = json.load(f)
    baseline = baseline_doc["qps"]
    # The baseline was measured on one specific backend (sim unless it says
    # otherwise). Records from any other backend are a different experiment
    # — a real-file run must not be graded against sim numbers, nor mask a
    # sim regression by happening to be fast. Skip them loudly.
    baseline_backend = baseline_doc.get("backend", "sim")
    # Same for the cache regime: a cold-cache record (the pool cleared
    # before every query) measures a different experiment than the warm
    # steady state the baseline describes. Mixing them either hides a real
    # regression or flags a phantom one, so mismatched records are skipped
    # just as loudly.
    baseline_cold = baseline_doc.get("cold", 0)
    # And the I/O regime: an async run overlaps speculative reads with
    # compute, so its qps is not comparable with a sync baseline (and vice
    # versa). Mismatched records are skipped loudly, like the backend.
    baseline_io = baseline_doc.get("io", "sync")
    skipped_backends: dict[str, int] = {}
    skipped_cold = 0
    skipped_io: dict[str, int] = {}
    best: dict[str, float] = {}
    with open(smoke_path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("threads") != 1:
                continue
            backend = rec.get("backend", "sim")
            if backend != baseline_backend:
                skipped_backends[backend] = skipped_backends.get(backend, 0) + 1
                continue
            if rec.get("cold", 0) != baseline_cold:
                skipped_cold += 1
                continue
            io = rec.get("io", "sync")
            if io != baseline_io:
                skipped_io[io] = skipped_io.get(io, 0) + 1
                continue
            wl = rec["workload"]
            best[wl] = max(best.get(wl, 0.0), rec["qps"])
    for backend, n in sorted(skipped_backends.items()):
        print(
            f"perf gate: skipped {n} record(s) from backend '{backend}' "
            f"(baseline is '{baseline_backend}')"
        )
    if skipped_cold:
        regime = "cold" if baseline_cold else "warm"
        print(
            f"perf gate: skipped {skipped_cold} record(s) from the other "
            f"cache regime (baseline is {regime})"
        )
    for io, n in sorted(skipped_io.items()):
        print(
            f"perf gate: skipped {n} record(s) from io regime '{io}' "
            f"(baseline is '{baseline_io}')"
        )

    failed = False
    for wl, base_qps in baseline.items():
        got = best.get(wl)
        if got is None:
            print(f"perf gate: no threads=1 measurement for workload '{wl}'")
            failed = True
            continue
        floor = TOLERANCE * base_qps
        verdict = "OK" if got >= floor else "FAIL"
        print(
            f"perf gate: {wl}: {got:.1f} qps vs baseline {base_qps:.1f} "
            f"(floor {floor:.1f}) -> {verdict}"
        )
        if got < floor:
            failed = True
    return 1 if failed else 0


def best_qps_by_workload(path, want_sampled):
    """Best single-thread warm qps per workload; errors for wrong regime.

    `want_sampled` asserts the file really is the regime the caller thinks
    it is: an unsampled file accidentally passed as the "on" side would
    make the overhead gate vacuous, so that is an error, not a skip.
    """
    best: dict[str, float] = {}
    errors = []
    with open(path, encoding="utf-8") as f:
        for n, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("threads") != 1 or rec.get("cold", 0) != 0:
                continue
            rate = rec.get("sample_rate", 0)
            if want_sampled and rate == 0:
                errors.append(f"{path}:{n}: expected a sampled record")
            elif not want_sampled and rate != 0:
                errors.append(
                    f"{path}:{n}: unsampled side has sample_rate {rate}"
                )
            if want_sampled and rate > 0 and rec.get("sampled_queries", 0) == 0:
                errors.append(f"{path}:{n}: sampled run traced 0 queries")
            wl = rec["workload"]
            best[wl] = max(best.get(wl, 0.0), rec["qps"])
    return best, errors


def overhead_gate(off_path, on_path) -> int:
    off, errors = best_qps_by_workload(off_path, want_sampled=False)
    on, on_errors = best_qps_by_workload(on_path, want_sampled=True)
    errors += on_errors
    for e in errors:
        print(f"overhead gate: {e}")
    failed = bool(errors)
    for wl, off_qps in sorted(off.items()):
        on_qps = on.get(wl)
        if on_qps is None:
            print(f"overhead gate: no sampled measurement for '{wl}'")
            failed = True
            continue
        floor = OVERHEAD_TOLERANCE * off_qps
        verdict = "OK" if on_qps >= floor else "FAIL"
        ratio = on_qps / off_qps if off_qps > 0 else 0.0
        print(
            f"overhead gate: {wl}: sampled {on_qps:.1f} qps vs unsampled "
            f"{off_qps:.1f} ({ratio:.2f}x, floor {floor:.1f}) -> {verdict}"
        )
        if on_qps < floor:
            failed = True
    if not off:
        print(f"overhead gate: no unsampled threads=1 records in {off_path}")
        failed = True
    return 1 if failed else 0


def main() -> int:
    if len(sys.argv) == 3 and sys.argv[1] == "validate-bench":
        return validate_bench(sys.argv[2])
    if len(sys.argv) == 3 and sys.argv[1] == "validate-metrics":
        return validate_metrics(sys.argv[2])
    if len(sys.argv) == 3 and sys.argv[1] == "validate-server":
        return validate_server(sys.argv[2])
    if len(sys.argv) == 4 and sys.argv[1] == "overhead":
        return overhead_gate(sys.argv[2], sys.argv[3])
    if len(sys.argv) == 3:
        return perf_gate(sys.argv[1], sys.argv[2])
    print(__doc__, file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
